"""Tests for the topology model."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.graph import Topology


def simple_matrix():
    return np.array(
        [
            [0.0, 10.0, 20.0],
            [10.0, 0.0, 15.0],
            [20.0, 15.0, 0.0],
        ]
    )


class TestConstruction:
    def test_basic(self):
        topo = Topology(simple_matrix())
        assert topo.n_nodes == 3
        assert len(topo) == 3
        assert topo.names == ("site-0", "site-1", "site-2")

    def test_distance_lookup(self):
        topo = Topology(simple_matrix())
        assert topo.distance(0, 1) == 10.0
        assert topo.distance(1, 0) == 10.0
        assert topo.distance(2, 2) == 0.0

    def test_custom_names(self):
        topo = Topology(simple_matrix(), names=["a", "b", "c"])
        assert topo.index_of("b") == 1

    def test_unknown_name_raises(self):
        topo = Topology(simple_matrix(), names=["a", "b", "c"])
        with pytest.raises(TopologyError):
            topo.index_of("zz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(TopologyError):
            Topology(simple_matrix(), names=["a", "a", "b"])

    def test_wrong_name_count_rejected(self):
        with pytest.raises(TopologyError):
            Topology(simple_matrix(), names=["a"])

    def test_non_square_rejected(self):
        with pytest.raises(TopologyError):
            Topology(np.zeros((2, 3)))

    def test_negative_rtt_rejected(self):
        m = simple_matrix()
        m[0, 1] = m[1, 0] = -1.0
        with pytest.raises(TopologyError):
            Topology(m)

    def test_nonzero_diagonal_rejected(self):
        m = simple_matrix()
        m[1, 1] = 5.0
        with pytest.raises(TopologyError):
            Topology(m)

    def test_nan_rejected(self):
        m = simple_matrix()
        m[0, 2] = np.nan
        with pytest.raises(TopologyError):
            Topology(m)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Topology(np.zeros((0, 0)))

    def test_asymmetry_is_averaged(self):
        m = simple_matrix()
        m[0, 1] = 12.0  # m[1, 0] stays 10
        topo = Topology(m, metric_closure=False)
        assert topo.distance(0, 1) == pytest.approx(11.0)
        assert topo.distance(1, 0) == pytest.approx(11.0)

    def test_rtt_matrix_read_only(self):
        topo = Topology(simple_matrix())
        with pytest.raises(ValueError):
            topo.rtt[0, 1] = 99.0


class TestMetricClosure:
    def test_closure_shortens_triangle_violations(self):
        m = np.array(
            [
                [0.0, 1.0, 50.0],
                [1.0, 0.0, 1.0],
                [50.0, 1.0, 0.0],
            ]
        )
        topo = Topology(m, metric_closure=True)
        assert topo.distance(0, 2) == pytest.approx(2.0)

    def test_closure_disabled_keeps_raw(self):
        m = np.array(
            [
                [0.0, 1.0, 50.0],
                [1.0, 0.0, 1.0],
                [50.0, 1.0, 0.0],
            ]
        )
        topo = Topology(m, metric_closure=False)
        assert topo.distance(0, 2) == 50.0

    def test_validate_metric_passes_after_closure(self):
        rng = np.random.default_rng(7)
        m = rng.uniform(1.0, 100.0, size=(12, 12))
        m = (m + m.T) / 2
        np.fill_diagonal(m, 0.0)
        topo = Topology(m, metric_closure=True)
        topo.validate_metric()

    def test_validate_metric_catches_violation(self):
        m = np.array(
            [
                [0.0, 1.0, 50.0],
                [1.0, 0.0, 1.0],
                [50.0, 1.0, 0.0],
            ]
        )
        topo = Topology(m, metric_closure=False)
        with pytest.raises(TopologyError):
            topo.validate_metric()


class TestCapacities:
    def test_default_capacities_are_one(self):
        topo = Topology(simple_matrix())
        assert np.all(topo.capacities == 1.0)

    def test_custom_capacities(self):
        topo = Topology(simple_matrix(), capacities=[0.5, 0.2, 1.0])
        assert topo.capacities[1] == 0.2

    def test_negative_capacity_rejected(self):
        with pytest.raises(TopologyError):
            Topology(simple_matrix(), capacities=[-0.1, 1.0, 1.0])

    def test_wrong_capacity_count_rejected(self):
        with pytest.raises(TopologyError):
            Topology(simple_matrix(), capacities=[1.0])

    def test_with_capacities_returns_new_topology(self):
        topo = Topology(simple_matrix())
        other = topo.with_capacities([0.1, 0.2, 0.3])
        assert np.all(topo.capacities == 1.0)
        assert other.capacities[2] == 0.3
        assert other.distance(0, 1) == topo.distance(0, 1)


class TestBall:
    def test_ball_includes_self_first(self, line_topology):
        ball = line_topology.ball(3, 1)
        assert list(ball) == [3]

    def test_ball_of_full_size(self, line_topology):
        ball = line_topology.ball(0, 10)
        assert sorted(ball) == list(range(10))

    def test_ball_picks_nearest(self, line_topology):
        ball = line_topology.ball(0, 3)
        assert sorted(ball) == [0, 1, 2]

    def test_ball_interior_node(self, line_topology):
        ball = line_topology.ball(5, 3)
        # node 5 plus its two 10ms-away neighbours (tie broken by id).
        assert 5 in ball and len(ball) == 3
        assert set(ball) <= {3, 4, 5, 6, 7}

    def test_ball_respects_capacity_bound(self):
        topo = Topology(
            simple_matrix(), capacities=[1.0, 0.1, 1.0]
        )
        ball = topo.ball(0, 2, capacity_at_least=0.5)
        assert list(sorted(ball)) == [0, 2]  # node 1 is too small

    def test_ball_capacity_shortage_raises(self):
        topo = Topology(simple_matrix(), capacities=[1.0, 0.1, 0.1])
        with pytest.raises(TopologyError):
            topo.ball(0, 3, capacity_at_least=0.5)

    def test_ball_size_out_of_range(self, line_topology):
        with pytest.raises(TopologyError):
            line_topology.ball(0, 0)
        with pytest.raises(TopologyError):
            line_topology.ball(0, 11)


class TestMedianAndMeans:
    def test_line_median_is_center(self, line_topology):
        med = line_topology.median()
        assert med in (4, 5)  # both central nodes minimize the sum

    def test_median_with_client_subset(self, line_topology):
        assert line_topology.median(clients=[0, 1, 2]) == 1

    def test_mean_distances_row_means(self, line_topology):
        means = line_topology.mean_distances()
        manual = line_topology.rtt.mean(axis=0)
        assert np.allclose(means, manual)

    def test_mean_distances_empty_clients_raises(self, line_topology):
        with pytest.raises(TopologyError):
            line_topology.mean_distances(clients=[])

    def test_clustered_median_in_client_cluster(self, clustered_topology):
        med = clustered_topology.median(clients=[0, 1, 2, 3, 4, 5])
        assert med in range(6)


class TestSubtopology:
    def test_subtopology_preserves_distances(self, line_topology):
        sub = line_topology.subtopology([2, 5, 9])
        assert sub.n_nodes == 3
        assert sub.distance(0, 1) == line_topology.distance(2, 5)
        assert sub.distance(1, 2) == line_topology.distance(5, 9)

    def test_subtopology_carries_names(self, line_topology):
        sub = line_topology.subtopology([0, 9])
        assert sub.names == ("site-0", "site-9")

    def test_subtopology_duplicates_rejected(self, line_topology):
        with pytest.raises(TopologyError):
            line_topology.subtopology([1, 1])

    def test_subtopology_empty_rejected(self, line_topology):
        with pytest.raises(TopologyError):
            line_topology.subtopology([])
