"""Tests for placement-aware fault-tolerance analysis."""

import numpy as np
import pytest

from repro.analysis.fault_tolerance import (
    crash_tolerance,
    min_nodes_to_disable,
)
from repro.core.placement import PlacedQuorumSystem, Placement
from repro.quorums.base import EnumeratedQuorumSystem
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.threshold import ThresholdQuorumSystem


class TestThresholdTolerance:
    def test_one_to_one_formula(self, line_topology):
        """One-to-one threshold: kill n - q + 1 nodes."""
        qs = ThresholdQuorumSystem(5, 3)
        placed = PlacedQuorumSystem(
            qs, Placement([0, 1, 2, 3, 4]), line_topology
        )
        assert min_nodes_to_disable(placed) == 3  # 5 - 3 + 1
        assert crash_tolerance(placed) == 2

    def test_colocation_reduces_tolerance(self, line_topology):
        qs = ThresholdQuorumSystem(5, 3)
        # Three elements on node 0: killing it removes 3 >= n-q+1 = 3.
        placed = PlacedQuorumSystem(
            qs, Placement([0, 0, 0, 1, 2]), line_topology
        )
        assert min_nodes_to_disable(placed) == 1
        assert crash_tolerance(placed) == 0

    def test_partial_colocation(self, line_topology):
        qs = ThresholdQuorumSystem(5, 3)
        # Pairs on nodes 0 and 1; need to remove 3 elements -> 2 nodes.
        placed = PlacedQuorumSystem(
            qs, Placement([0, 0, 1, 1, 2]), line_topology
        )
        assert min_nodes_to_disable(placed) == 2

    def test_qu_majority_tolerance(self, planetlab):
        """Q/U's (4t+1, 5t+1): one-to-one tolerates t crashes... and more:
        quorums need only q of n alive, so t+1 crash kills no quorum until
        n - q + 1 = t + 1 nodes die."""
        qs = ThresholdQuorumSystem(21, 17)  # t = 4
        placed = PlacedQuorumSystem(
            qs, Placement(np.arange(21)), planetlab
        )
        assert min_nodes_to_disable(placed) == 5  # t + 1


class TestGridTolerance:
    def test_one_to_one_grid_is_k(self, planetlab):
        g = GridQuorumSystem(3)
        placed = PlacedQuorumSystem(
            g, Placement(np.arange(9)), planetlab
        )
        # Break one node per row (or per column): k nodes.
        assert min_nodes_to_disable(placed) == 3

    def test_column_colocation(self, line_topology):
        g = GridQuorumSystem(2)
        # Place each grid *column* on one node: killing one node breaks
        # every row, so all quorums die with... one node kills one element
        # of each row -> breaks both rows -> 1 node suffices.
        placement = Placement([0, 1, 0, 1])  # (r,c) -> node c
        placed = PlacedQuorumSystem(g, placement, line_topology)
        assert min_nodes_to_disable(placed) == 1

    def test_all_on_one_node(self, line_topology):
        g = GridQuorumSystem(3)
        placed = PlacedQuorumSystem(
            g, Placement([4] * 9), line_topology
        )
        assert min_nodes_to_disable(placed) == 1


class TestGenericTolerance:
    def test_star_system(self, line_topology):
        # Element 0 in every quorum: killing its node disables everything.
        qs = EnumeratedQuorumSystem(
            [frozenset({0, 1}), frozenset({0, 2})], name="star"
        )
        placed = PlacedQuorumSystem(
            qs, Placement([5, 6, 7]), line_topology
        )
        assert min_nodes_to_disable(placed) == 1

    def test_triangle_system(self, line_topology):
        # Quorums {0,1},{1,2},{0,2}: any two nodes hit all three quorums;
        # no single node does.
        qs = EnumeratedQuorumSystem(
            [frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})],
            name="triangle",
        )
        placed = PlacedQuorumSystem(
            qs, Placement([1, 2, 3]), line_topology
        )
        assert min_nodes_to_disable(placed) == 2

    def test_one_to_one_beats_many_to_one(self, planetlab):
        """The paper's fault-tolerance argument, quantified."""
        g = GridQuorumSystem(3)
        one_to_one = PlacedQuorumSystem(
            g, Placement(np.arange(9)), planetlab
        )
        collapsed = PlacedQuorumSystem(
            g, Placement(np.arange(9) % 3), planetlab
        )
        assert min_nodes_to_disable(one_to_one) > min_nodes_to_disable(
            collapsed
        )
