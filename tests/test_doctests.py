"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro.cli
import repro.quorums.threshold


@pytest.mark.parametrize(
    "module",
    [repro.quorums.threshold, repro.cli],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
