"""Run the doctests embedded in public docstrings.

The LP and runtime packages carry runnable examples in their public API
docstrings (ISSUE 3 satellite); this suite executes them on whatever LP
backend the environment selects, and CI additionally re-runs it with
``REPRO_LP_BACKEND=scipy`` so the examples hold on both solver paths.
"""

import doctest

import pytest

import repro.cli
import repro.dynamics.controller
import repro.lp.batched
import repro.lp.problem
import repro.lp.solver
import repro.quorums.threshold
import repro.runtime.cache
import repro.runtime.grid
import repro.runtime.runner


@pytest.mark.parametrize(
    "module",
    [
        repro.cli,
        repro.dynamics.controller,
        repro.lp.batched,
        repro.lp.problem,
        repro.lp.solver,
        repro.quorums.threshold,
        repro.runtime.cache,
        repro.runtime.grid,
        repro.runtime.runner,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
