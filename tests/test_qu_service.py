"""Integration tests for the simulated Q/U service."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.qu.service import QUService
from repro.sim.metrics import summarize


def build_service(topology, server_nodes, quorum_size, **kwargs):
    return QUService(
        topology,
        np.asarray(server_nodes),
        quorum_size=quorum_size,
        **kwargs,
    )


class TestServiceConstruction:
    def test_duplicate_server_nodes_rejected(self, line_topology):
        with pytest.raises(SimulationError):
            build_service(line_topology, [1, 1, 2], 2)

    def test_bad_quorum_size_rejected(self, line_topology):
        with pytest.raises(SimulationError):
            build_service(line_topology, [0, 1, 2], 4)

    def test_run_without_clients_rejected(self, line_topology):
        service = build_service(line_topology, [0, 1, 2], 2)
        with pytest.raises(SimulationError):
            service.run(duration_ms=100.0)


class TestSingleClient:
    def test_operations_complete(self, line_topology):
        service = build_service(line_topology, [0, 1, 2], 2, seed=1)
        service.add_client(node=0)
        service.run(duration_ms=500.0)
        records = service.all_records()
        assert len(records) > 0
        assert all(r.response_time_ms > 0 for r in records)

    def test_response_exceeds_network_delay(self, line_topology):
        service = build_service(line_topology, [0, 1, 2], 2, seed=1)
        service.add_client(node=5)
        service.run(duration_ms=500.0)
        for r in service.all_records():
            # Response includes >= 1 ms service on the slowest server.
            assert r.response_time_ms >= r.network_delay_ms + 1.0 - 1e-9

    def test_full_quorum_network_delay(self, line_topology):
        """With quorum = all servers, the network component is the max
        RTT to any server."""
        service = build_service(line_topology, [0, 9], 2, seed=1)
        service.add_client(node=0)
        service.run(duration_ms=500.0)
        for r in service.all_records():
            assert r.network_delay_ms == pytest.approx(90.0)

    def test_closed_loop_timing(self, line_topology):
        """Consecutive ops: the next issues exactly when the previous
        completes (zero think time)."""
        service = build_service(line_topology, [0, 1], 2, seed=1)
        service.add_client(node=0)
        service.run(duration_ms=300.0)
        records = service.all_records()
        for prev, cur in zip(records, records[1:]):
            assert cur.issued_at_ms == pytest.approx(prev.completed_at_ms)

    def test_think_time_spaces_operations(self, line_topology):
        service = build_service(line_topology, [0, 1], 2, seed=1)
        service.add_client(node=0, think_time_ms=50.0)
        service.run(duration_ms=1000.0)
        records = service.all_records()
        for prev, cur in zip(records, records[1:]):
            assert cur.issued_at_ms >= prev.completed_at_ms + 50.0 - 1e-9


class TestDeterminism:
    def run_once(self, topology, seed):
        service = build_service(topology, [0, 2, 4, 6, 8], 4, seed=seed)
        for node in (1, 3, 5):
            service.add_client(node=node)
        service.run(duration_ms=400.0)
        return [
            (r.client_id, r.issued_at_ms, r.completed_at_ms)
            for r in service.all_records()
        ]

    def test_same_seed_same_trace(self, line_topology):
        assert self.run_once(line_topology, 7) == self.run_once(
            line_topology, 7
        )

    def test_different_seed_different_trace(self, line_topology):
        assert self.run_once(line_topology, 7) != self.run_once(
            line_topology, 8
        )


class TestQueueing:
    def test_utilization_grows_with_clients(self, line_topology):
        def mean_util(n_clients):
            service = build_service(
                line_topology, [0, 1, 2], 2, seed=3
            )
            for i in range(n_clients):
                service.add_client(node=i % 10)
            service.run(duration_ms=800.0)
            return service.server_utilizations().mean()

        assert mean_util(12) > mean_util(2)

    def test_response_grows_with_clients(self, line_topology):
        def mean_response(n_clients):
            service = build_service(
                line_topology, [0, 1, 2], 2, seed=3, service_time_ms=2.0
            )
            for i in range(n_clients):
                service.add_client(node=i % 10)
            service.run(duration_ms=1500.0)
            return summarize(
                service.all_records(), warmup_ms=300.0
            ).mean_response_ms

        assert mean_response(16) > mean_response(1)

    def test_server_fifo_order(self, line_topology):
        """All clients at one node hitting one single-server quorum are
        served in arrival order."""
        service = build_service(line_topology, [0], 1, seed=4)
        for _ in range(5):
            service.add_client(node=9)
        service.run(duration_ms=400.0)
        server = service.servers[0]
        assert server.requests_processed > 0
        # With 5 closed-loop clients and a single 1ms server 90ms away,
        # utilization stays modest but queueing is visible at bursts.
        records = service.all_records()
        assert all(
            r.response_time_ms >= r.network_delay_ms + 1.0 - 1e-9
            for r in records
        )


class TestContention:
    def test_shared_object_still_progresses(self, line_topology):
        """Clients writing the same object retry through contention but
        keep completing operations."""
        service = build_service(line_topology, [0, 1, 2], 2, seed=5)
        for _ in range(3):
            service.add_client(node=0, object_id=123)
        service.run(duration_ms=1000.0)
        completed = [c.operations_completed for c in service.clients]
        assert sum(completed) > 0
        total_retries = sum(c.retries_total for c in service.clients)
        assert total_retries >= 0  # retries may or may not occur

    def test_private_objects_never_retry(self, line_topology):
        service = build_service(line_topology, [0, 1, 2], 2, seed=5)
        for _ in range(3):
            service.add_client(node=0)  # distinct default object ids
        service.run(duration_ms=1000.0)
        assert all(c.retries_total == 0 for c in service.clients)
