"""Tests for the hierarchical (cluster -> coarse -> refine) search.

Pins: clustering is a pure function of the topology; below the exact
threshold the search *is* the exhaustive one; above it, quality stays
within a regression-bounded factor of exhaustive on topologies whose
structure matches the WAN presets; ``jobs=N`` matches ``jobs=1``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.network.generators import synthetic_wan
from repro.placement.hierarchical import (
    cluster_sites,
    hierarchical_best_placement,
)
from repro.placement.search import best_placement
from repro.quorums.threshold import ThresholdQuorumSystem


@pytest.fixture(scope="module")
def wan300():
    return synthetic_wan(300)


@pytest.fixture(scope="module")
def system():
    return ThresholdQuorumSystem(5, 3)


class TestClustering:
    def test_partitions_all_sites(self, wan300):
        model = cluster_sites(wan300, 12)
        nodes = np.sort(np.concatenate(model.clusters))
        assert np.array_equal(nodes, np.arange(wan300.n_nodes))

    def test_deterministic(self, wan300):
        a = cluster_sites(wan300, 12)
        b = cluster_sites(wan300, 12)
        assert np.array_equal(a.medoids, b.medoids)
        for ca, cb in zip(a.clusters, b.clusters):
            assert np.array_equal(ca, cb)

    def test_medoids_belong_to_their_clusters(self, wan300):
        model = cluster_sites(wan300, 12)
        for i, medoid in enumerate(model.medoids):
            assert medoid in model.clusters[i]
            assert model.cluster_of(int(medoid)) == i

    def test_separated_clusters_recovered(self, clustered_topology):
        """Two tight groups 100 ms apart must split cleanly in two."""
        model = cluster_sites(clustered_topology, 2)
        assert model.n_clusters == 2
        groups = {frozenset(int(n) for n in c) for c in model.clusters}
        assert groups == {frozenset(range(6)), frozenset(range(6, 12))}

    def test_singleton_clustering(self, clustered_topology):
        model = cluster_sites(clustered_topology, 1)
        assert model.n_clusters == 1
        assert model.clusters[0].size == clustered_topology.n_nodes

    def test_bad_n_clusters(self, clustered_topology):
        with pytest.raises(PlacementError):
            cluster_sites(clustered_topology, 0)
        with pytest.raises(PlacementError):
            cluster_sites(clustered_topology, 13)


class TestExactFallThrough:
    def test_small_topologies_are_exhaustive(self, planetlab, system):
        hier = hierarchical_best_placement(planetlab, system)
        exhaustive = best_placement(planetlab, system)
        assert hier.exhaustive
        assert hier.v0 == exhaustive.v0
        assert hier.avg_network_delay == exhaustive.avg_network_delay
        assert hier.delays_by_candidate == exhaustive.delays_by_candidate
        assert hier.medoids == ()

    def test_threshold_is_inclusive(self, planetlab, system):
        at = hierarchical_best_placement(
            planetlab, system, exact_threshold=planetlab.n_nodes
        )
        assert at.exhaustive
        below = hierarchical_best_placement(
            planetlab, system, exact_threshold=planetlab.n_nodes - 1
        )
        assert not below.exhaustive


class TestHierarchicalSearch:
    def test_quality_vs_exhaustive(self, wan300, system):
        """Regression bound: within 2% of the true optimum on a WAN-like
        topology (in practice it finds the exact optimum here)."""
        hier = hierarchical_best_placement(wan300, system)
        exhaustive = best_placement(wan300, system)
        assert not hier.exhaustive
        assert (
            hier.avg_network_delay
            <= 1.02 * exhaustive.avg_network_delay
        )

    def test_evaluates_far_fewer_candidates(self, wan300, system):
        hier = hierarchical_best_placement(wan300, system)
        assert hier.n_candidates < wan300.n_nodes / 2

    def test_deterministic(self, wan300, system):
        a = hierarchical_best_placement(wan300, system)
        b = hierarchical_best_placement(wan300, system)
        assert a.v0 == b.v0
        assert a.avg_network_delay == b.avg_network_delay
        assert a.medoids == b.medoids
        assert a.refined_clusters == b.refined_clusters
        assert a.delays_by_candidate == b.delays_by_candidate

    def test_parallel_matches_serial(self, wan300, system):
        serial = hierarchical_best_placement(wan300, system)
        parallel = hierarchical_best_placement(wan300, system, jobs=2)
        assert serial.v0 == parallel.v0
        assert serial.avg_network_delay == parallel.avg_network_delay
        assert serial.delays_by_candidate == parallel.delays_by_candidate

    def test_never_worse_than_coarse_medoids(self, wan300, system):
        """Medoids stay in the refined pool, so the result can't be
        worse than the best medoid-only placement."""
        hier = hierarchical_best_placement(wan300, system, refine_top=1)
        coarse = best_placement(
            wan300, system, candidates=np.asarray(hier.medoids)
        )
        assert hier.avg_network_delay <= coarse.avg_network_delay

    def test_refine_top_widens_the_pool(self, wan300, system):
        narrow = hierarchical_best_placement(wan300, system, refine_top=1)
        wide = hierarchical_best_placement(wan300, system, refine_top=4)
        assert wide.n_candidates > narrow.n_candidates
        assert wide.avg_network_delay <= narrow.avg_network_delay

    def test_bad_parameters(self, wan300, system):
        with pytest.raises(PlacementError):
            hierarchical_best_placement(wan300, system, refine_top=0)
        with pytest.raises(PlacementError):
            hierarchical_best_placement(
                wan300, system, exact_threshold=-1
            )
