"""The observability layer's determinism contract and trace format.

Three families of pins:

* **Zero-perturbation** — tracing is observation only. Traced runs are
  bit-identical to untraced runs (results *and* cache keys/bytes), on
  both LP backends, serial and parallel alike; the disabled fast path
  allocates nothing.
* **Format** — the JSONL schema (manifest / span / counters records) is
  pinned field-for-field, ``load_trace`` rejects every malformed shape,
  and ``summarize`` renders a golden output.
* **Plumbing** — worker span merge is structurally deterministic,
  ``run_figure`` exposes per-run cache deltas, shm fallbacks log and
  count, and the LP counters agree with the solve schedule.
"""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest

from repro.errors import ReproError
from repro.lp import BatchedProgram, LinearProgram
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    activate,
    build_manifest,
    count,
    current_tracer,
    deactivate,
    span,
    tracing,
    write_trace,
)
from repro.obs.summarize import check, load_trace, summarize
from repro.placement.search import best_placement
from repro.quorums.grid import GridQuorumSystem
from repro.runtime.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.runtime.grid import GridPoint
from repro.runtime.runner import GridRunner

BACKENDS = ["auto", "scipy"]


def _force_backend(monkeypatch, backend_env: str) -> None:
    if backend_env == "scipy":
        monkeypatch.setenv("REPRO_LP_BACKEND", "scipy")


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    deactivate()
    yield
    deactivate()


# ----------------------------------------------------------------------
# Tracer basics
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_and_counters(self):
        tracer = Tracer()
        with tracer.span("outer", size=2):
            tracer.count("items", 2)
            with tracer.span("inner", tag="a"):
                tracer.count("items")
        events, counters = tracer.export()
        assert [e["name"] for e in events] == ["outer", "inner"]
        outer, inner = events
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert outer["attrs"] == {"size": 2}
        assert inner["attrs"] == {"tag": "a"}
        assert all(e["proc"] == "main" for e in events)
        assert all(e["dur_us"] >= 0 for e in events)
        assert counters == {"items": 3}

    def test_annotate_inside_span(self):
        tracer = Tracer()
        with tracer.span("phase") as s:
            s.annotate(found=7)
        events, _ = tracer.export()
        assert events[0]["attrs"] == {"found": 7}

    def test_annotate_outside_span_raises(self):
        s = Tracer().span("phase")
        with pytest.raises(ReproError):
            s.annotate(found=7)

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ReproError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_export_with_open_span_raises(self):
        tracer = Tracer()
        tracer.span("left.open").__enter__()
        with pytest.raises(ReproError, match="still open"):
            tracer.export()

    def test_merge_remaps_ids_and_reparents_roots(self):
        child = Tracer(label="worker")
        with child.span("task"):
            with child.span("lp"):
                child.count("lp.solve", 3)
        events, counters = child.export()

        parent = Tracer()
        parent.count("lp.solve", 1)
        point = parent.record_span("grid.point", 0, 1000, tag="p0")
        parent.merge(events, counters, parent=point)
        merged, totals = parent.export()

        by_name = {e["name"]: e for e in merged}
        assert by_name["task"]["parent"] == point
        assert by_name["lp"]["parent"] == by_name["task"]["id"]
        assert by_name["task"]["proc"] == "worker"
        ids = [e["id"] for e in merged]
        assert len(set(ids)) == len(ids)
        assert totals == {"lp.solve": 4}

    def test_record_span_attaches_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.record_span("done", 0, 500)
        events, _ = tracer.export()
        assert events[1]["parent"] == events[0]["id"]
        assert events[1]["dur_us"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Activation and the disabled fast path
# ----------------------------------------------------------------------
class TestActivation:
    def test_tracing_context_installs_and_removes(self):
        tracer = Tracer()
        assert current_tracer() is None
        with tracing(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_tracing_removes_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing(Tracer()):
                raise RuntimeError("boom")
        assert current_tracer() is None

    def test_nested_activation_refused(self):
        with tracing(Tracer()):
            with pytest.raises(ReproError, match="already active"):
                activate(Tracer())

    def test_deactivate_is_idempotent(self):
        deactivate()
        deactivate()
        assert current_tracer() is None

    def test_disabled_span_is_one_shared_noop(self):
        """The zero-overhead contract: no allocation per disabled call."""
        first = span("anything", size=1)
        second = span("else")
        assert first is second  # the shared nullcontext instance
        with first:
            pass  # reusable and reentrant

    def test_disabled_count_records_nothing(self):
        count("lp.solve", 10)  # no active tracer: must be a no-op
        tracer = Tracer()
        with tracing(tracer):
            count("lp.solve", 2)
        assert tracer.counters == {"lp.solve": 2}

    def test_helpers_route_to_active_tracer(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("phase", k=1):
                count("n", 5)
        events, counters = tracer.export()
        assert events[0]["name"] == "phase"
        assert counters == {"n": 5}


# ----------------------------------------------------------------------
# JSONL schema pin
# ----------------------------------------------------------------------
class TestTraceFormat:
    def _write(self, tmp_path):
        tracer = Tracer()
        with tracing(tracer):
            with span("figure", figure_id="fig_x"):
                with span("grid.point", tag="p0"):
                    count("lp.solve", 2)
        return write_trace(
            tmp_path / "t.jsonl", tracer, config={"figure_id": "fig_x"}
        )

    def test_record_shapes_are_pinned(self, tmp_path):
        out = self._write(tmp_path)
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        manifest, *spans, counters = records

        assert manifest["type"] == "manifest"
        assert set(manifest) == {
            "type", "trace_schema", "cache_schema", "lp_backend",
            "shm_available", "python", "numpy", "config",
            "config_fingerprint", "written_at",
        }
        assert manifest["trace_schema"] == TRACE_SCHEMA_VERSION == 1
        assert manifest["cache_schema"] == CACHE_SCHEMA_VERSION
        assert manifest["config"] == {"figure_id": "fig_x"}
        assert len(manifest["config_fingerprint"]) == 64

        assert [s["name"] for s in spans] == ["figure", "grid.point"]
        for record in spans:
            assert set(record) == {
                "type", "id", "parent", "name", "proc", "t0_us",
                "dur_us", "attrs",
            }
        assert counters == {
            "type": "counters", "counters": {"lp.solve": 2}
        }

    def test_config_fingerprint_is_content_addressed(self):
        a = build_manifest({"x": 1, "y": 2})
        b = build_manifest({"y": 2, "x": 1})
        c = build_manifest({"x": 1, "y": 3})
        assert a["config_fingerprint"] == b["config_fingerprint"]
        assert a["config_fingerprint"] != c["config_fingerprint"]

    def test_load_trace_round_trips(self, tmp_path):
        out = self._write(tmp_path)
        manifest, spans, counters = load_trace(out)
        assert manifest["lp_backend"]
        assert [s["name"] for s in spans] == ["figure", "grid.point"]
        assert counters == {"lp.solve": 2}
        assert "ok:" in check(out)

    @pytest.mark.parametrize(
        "mutate, reason",
        [
            (lambda rs: rs[1:], "first record must be a manifest"),
            (lambda rs: [{**rs[0], "trace_schema": 99}] + rs[1:],
             "trace schema"),
            (lambda rs: [rs[0], rs[0]] + rs[1:], "duplicate manifest"),
            (lambda rs: rs[:-1], "no counters record"),
            (lambda rs: [rs[0], rs[-1]] + rs[1:-1], "must be last"),
            (lambda rs: rs[:-1] + [{"type": "mystery"}],
             "unknown record type"),
            (lambda rs: [rs[0], {**rs[1], "dur_us": -1.0}] + rs[2:],
             "negative"),
            (lambda rs: [rs[0], rs[1], {**rs[2], "id": rs[1]["id"]}]
             + rs[3:], "reused"),
            (lambda rs: [rs[0], {**rs[1], "parent": 999}] + rs[2:],
             "unknown parent"),
            (lambda rs: rs[:-1]
             + [{"type": "counters", "counters": {"n": -1}}],
             "non-negative"),
            (lambda rs: rs[:-1]
             + [{"type": "counters", "counters": [1, 2]}],
             "must be an object"),
        ],
    )
    def test_malformed_traces_rejected(self, tmp_path, mutate, reason):
        out = self._write(tmp_path)
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            "".join(json.dumps(r) + "\n" for r in mutate(records))
        )
        with pytest.raises(ReproError, match=reason):
            check(bad)

    def test_empty_and_non_json_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ReproError, match="empty"):
            load_trace(empty)
        garbled = tmp_path / "garbled.jsonl"
        garbled.write_text("not json\n")
        with pytest.raises(ReproError, match="not JSON"):
            load_trace(garbled)
        with pytest.raises(ReproError, match="cannot read"):
            load_trace(tmp_path / "missing.jsonl")


# ----------------------------------------------------------------------
# Bit-identity: tracing never perturbs results or cache bytes
# ----------------------------------------------------------------------
def _snapshot(search):
    return (
        search.v0,
        search.avg_network_delay,
        search.delays_by_candidate,
        search.placed.placement.assignment.tobytes(),
    )


def _run_search(topology, jobs):
    system = GridQuorumSystem(2)
    candidates = np.argsort(topology.mean_distances())[:4]
    with GridRunner(jobs=jobs) as runner:
        return best_placement(
            topology, system, candidates=candidates, runner=runner
        )


class TestBitIdentity:
    """ISSUE acceptance: traced == untraced to the bit, both backends,
    serial and parallel."""

    @pytest.mark.parametrize("backend_env", BACKENDS)
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_traced_equals_untraced(
        self, monkeypatch, plane_topology, backend_env, jobs
    ):
        _force_backend(monkeypatch, backend_env)
        untraced = _snapshot(_run_search(plane_topology, jobs))
        with tracing(Tracer()):
            traced = _snapshot(_run_search(plane_topology, jobs))
        assert traced == untraced

    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_traced_jobs2_equals_untraced_jobs1(
        self, monkeypatch, plane_topology, backend_env
    ):
        _force_backend(monkeypatch, backend_env)
        serial = _snapshot(_run_search(plane_topology, 1))
        with tracing(Tracer()):
            parallel = _snapshot(_run_search(plane_topology, 2))
        assert parallel == serial

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_cache_bytes_identical(self, tmp_path, jobs):
        """A traced run stores exactly the files an untraced run would —
        same keys (names), same bytes."""

        def run(root):
            cache = ResultCache(root)
            points = [
                GridPoint(
                    tag=i,
                    fn=pow,
                    kwargs={"base": 2, "exp": i},
                    cache_key={"kind": "obs-bit-identity", "exp": i},
                )
                for i in range(4)
            ]
            with GridRunner(jobs=jobs, cache=cache) as runner:
                results = runner.run(points)
            return results

        untraced = run(tmp_path / "untraced")
        with tracing(Tracer()):
            traced = run(tmp_path / "traced")
        assert traced == untraced

        def listing(root):
            return {
                p.name: p.read_bytes()
                for p in sorted(root.rglob("*"))
                if p.is_file()
            }

        assert listing(tmp_path / "traced") == listing(
            tmp_path / "untraced"
        )


# ----------------------------------------------------------------------
# Parallel span merge determinism
# ----------------------------------------------------------------------
def _structure(tracer):
    """The deterministic projection of a trace: everything but timing."""
    events, counters = tracer.export()
    return [
        (e["id"], e["parent"], e["name"], e["proc"],
         tuple(sorted(e["attrs"].items())))
        for e in events
    ], counters


class TestMergeDeterminism:
    def test_two_parallel_runs_have_identical_structure(self):
        def run():
            tracer = Tracer()
            with tracing(tracer):
                with GridRunner(jobs=2) as runner:
                    runner.map(
                        pow, [{"base": 2, "exp": i} for i in range(6)]
                    )
            return _structure(tracer)

        assert run() == run()

    def test_worker_spans_graft_under_their_grid_point(self):
        tracer = Tracer()
        with tracing(tracer):
            with GridRunner(jobs=2) as runner:
                runner.map(pow, [{"base": 3, "exp": i} for i in range(4)])
        events, _ = tracer.export()
        points = [e for e in events if e["name"] == "grid.point"]
        tasks = [e for e in events if e["name"] == "task"]
        assert len(points) == 4
        assert len(tasks) == 4
        assert [e["attrs"]["tag"] for e in points] == [
            "0", "1", "2", "3"
        ]  # merged in submission order, not completion order
        point_ids = {e["id"] for e in points}
        assert all(t["parent"] in point_ids for t in tasks)
        assert all(t["proc"] == "worker" for t in tasks)


# ----------------------------------------------------------------------
# summarize / check golden output
# ----------------------------------------------------------------------
GOLDEN_RECORDS = [
    {"type": "manifest", "trace_schema": 1, "cache_schema": 7,
     "lp_backend": "test", "shm_available": True, "config": {},
     "config_fingerprint": "f" * 64},
    {"type": "span", "id": 1, "parent": None, "name": "figure",
     "proc": "main", "t0_us": 0.0, "dur_us": 5000.0,
     "attrs": {"figure_id": "fig_x"}},
    {"type": "span", "id": 2, "parent": 1, "name": "grid.point",
     "proc": "main", "t0_us": 100.0, "dur_us": 2000.0,
     "attrs": {"tag": "b"}},
    {"type": "span", "id": 3, "parent": 1, "name": "grid.point",
     "proc": "main", "t0_us": 2200.0, "dur_us": 1000.0,
     "attrs": {"tag": "a"}},
    {"type": "counters", "counters": {"lp.solve": 4, "cache.hit": 1}},
]

GOLDEN_SUMMARY = """\
== trace summary: golden.jsonl ==
   manifest: trace_schema=1 cache_schema=7 lp_backend=test config_fingerprint=ffffffffffff
   spans: 3 across 2 name(s)
     name                      count   total_ms   mean_ms    max_ms
     figure                        1       5.00      5.00      5.00
     grid.point                    2       3.00      1.50      2.00
   counters: 2
     cache.hit                                 1
     lp.solve                                  4
   top 2 slowest grid point(s):
     b                                              2.00 ms
     a                                              1.00 ms"""


class TestSummarize:
    @pytest.fixture()
    def golden(self, tmp_path):
        out = tmp_path / "golden.jsonl"
        out.write_text(
            "".join(
                json.dumps(r, sort_keys=True) + "\n"
                for r in GOLDEN_RECORDS
            )
        )
        return out

    def test_golden_summary(self, golden):
        assert summarize(golden, top=2) == GOLDEN_SUMMARY

    def test_golden_check_line(self, golden):
        assert check(golden) == (
            "ok: golden.jsonl — 3 span(s), 2 counter(s), "
            "lp_backend=test, cache_schema=7"
        )

    def test_top_zero_omits_slowest_listing(self, golden):
        assert "slowest" not in summarize(golden, top=0)


# ----------------------------------------------------------------------
# run_figure cache-stats exposure
# ----------------------------------------------------------------------
class TestCacheStatsExposure:
    def test_run_figure_reports_per_run_deltas(self, tmp_path):
        from repro.experiments import run_figure

        cache = ResultCache(tmp_path)
        first = run_figure("fig_3_1", fast=True, cache=cache)
        stats = first.metadata["cache"]
        assert set(stats) == {"hits", "misses", "stores", "evictions"}
        assert stats["hits"] == 0
        assert stats["misses"] == stats["stores"] > 0

        second = run_figure("fig_3_1", fast=True, cache=cache)
        again = second.metadata["cache"]
        # Deltas, not lifetime totals: the second run reports only its
        # own hits even though the cache object accumulated both runs.
        assert again["hits"] == stats["misses"]
        assert again["misses"] == 0
        assert second.series == first.series

    def test_uncached_run_has_no_cache_metadata(self):
        from repro.experiments import run_figure

        result = run_figure("fig_3_1", fast=True)
        assert "cache" not in result.metadata


# ----------------------------------------------------------------------
# shm fallback: logged and counted, never silent
# ----------------------------------------------------------------------
class TestShmFallback:
    def test_disabled_transport_logs_and_counts(
        self, monkeypatch, caplog, plane_topology
    ):
        from repro.runtime.shm import SHM_DISABLE_ENV, TopologyBroker

        monkeypatch.setenv(SHM_DISABLE_ENV, "1")
        tracer = Tracer()
        with tracing(tracer):
            with caplog.at_level(logging.INFO, logger="repro.runtime.shm"):
                broker = TopologyBroker()
                shipped = broker.publish(plane_topology)
        assert shipped is plane_topology
        assert tracer.counters.get("shm.fallback") == 1
        assert any(
            "unavailable" in record.message for record in caplog.records
        )

    def test_publish_failure_logs_warning_and_counts(
        self, monkeypatch, caplog, plane_topology
    ):
        import repro.runtime.shm as shm_module

        class _Boom:
            def __init__(self, *args, **kwargs):
                raise OSError("no /dev/shm for you")

        monkeypatch.setattr(
            shm_module.shared_memory, "SharedMemory", _Boom
        )
        tracer = Tracer()
        with tracing(tracer):
            with caplog.at_level(
                logging.WARNING, logger="repro.runtime.shm"
            ):
                broker = shm_module.TopologyBroker()
                shipped = broker.publish(plane_topology)
        assert shipped is plane_topology  # pickle fallback, not a crash
        assert tracer.counters.get("shm.fallback") == 1
        assert any(
            record.levelno == logging.WARNING for record in caplog.records
        )


# ----------------------------------------------------------------------
# LP counters agree with the solve schedule
# ----------------------------------------------------------------------
def _tied_program(backend=None):
    lp = LinearProgram()
    lp.add_block("v", 3, lower=0.0, upper=1.0)
    lp.set_objective_many(np.arange(3), np.ones(3))
    lp.add_le([0, 1, 2], [-1.0, -1.0, -1.0], -1.5)
    return BatchedProgram(lp, backend=backend)


class TestLpCounters:
    def test_solve_counts_match_requests(self):
        tracer = Tracer()
        with tracing(tracer):
            program = _tied_program()
            program.solve([-1.2])
            program.solve([-0.8])
            program.solve_many([[-1.0], [-0.5], [-1.4]])
        assert tracer.counters["lp.solve"] == 5
        assert tracer.counters["lp.calibration"] == 1  # one anchor

    def test_scipy_backend_never_reports_warm_hits(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_BACKEND", "scipy")
        tracer = Tracer()
        with tracing(tracer):
            program = _tied_program()
            program.solve([-1.2])
            program.solve([-0.8])
        assert tracer.counters["lp.solve"] == 2
        assert "lp.warm_start_hit" not in tracer.counters

    def test_empty_solve_many_counts_nothing(self):
        tracer = Tracer()
        with tracing(tracer):
            _tied_program().solve_many([])
        assert "lp.solve" not in tracer.counters


# ----------------------------------------------------------------------
# CLI integration: --trace and trace summarize
# ----------------------------------------------------------------------
class TestCli:
    def test_figure_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.jsonl"
        code = main(
            ["figure", "fig_3_1", "--fast", "--no-cache",
             "--trace", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "trace:" in printed and str(out) in printed
        manifest, spans, counters = load_trace(out)
        assert manifest["config"]["figure_id"] == "fig_3_1"
        assert manifest["config"]["fast"] is True
        assert spans[0]["name"] == "figure"
        assert "grid.run" in {s["name"] for s in spans}

        assert main(["trace", "summarize", str(out), "--check"]) == 0
        assert capsys.readouterr().out.startswith("ok:")
        assert main(["trace", "summarize", str(out)]) == 0
        assert "counters" in capsys.readouterr().out

    def test_untraced_figure_prints_no_trace_line(self, capsys):
        from repro.cli import main

        assert main(["figure", "fig_3_1", "--fast", "--no-cache"]) == 0
        assert "trace:" not in capsys.readouterr().out

    def test_summarize_rejects_corrupt_trace(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n')
        assert main(["trace", "summarize", str(bad), "--check"]) == 1
        assert "invalid trace" in capsys.readouterr().err
