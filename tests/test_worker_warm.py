"""Worker-warm LP caches and canonical (anchored) solves.

The contract under test: a batched-LP solve is a pure function of
(built program, request) — tied optima break the same way no matter what
was solved before or which process solves it. That is what lets pool
workers keep assembled programs warm across the candidates they happen to
be handed (``worker_memo``) while ``jobs=N`` stays *bit-identical* to
``jobs=1``, on the warm HiGHS path and the forced scipy fallback alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.iterative import iterative_optimize
from repro.lp import BatchedProgram, LinearProgram
from repro.placement.many_to_one import best_many_to_one_placement
from repro.quorums.grid import GridQuorumSystem
from repro.runtime.runner import GridRunner, worker_memo

GRID = GridQuorumSystem(3)

#: Forces the scipy fallback alongside the auto-probed (HiGHS when
#: importable) backend; pool workers inherit the environment via fork.
BACKENDS = ["auto", "scipy"]


def _force_backend(monkeypatch, backend_env: str) -> None:
    if backend_env == "scipy":
        monkeypatch.setenv("REPRO_LP_BACKEND", "scipy")


def _tied_program(backend: str | None = None) -> BatchedProgram:
    """``min x+y+z`` over ``[0,1]^3`` s.t. ``x+y+z >= b``: every point of
    the optimal face ties, so the chosen vertex is pure tie-break."""
    lp = LinearProgram()
    lp.add_block("v", 3, lower=0.0, upper=1.0)
    lp.set_objective_many(np.arange(3), np.ones(3))
    lp.add_le([0, 1, 2], [-1.0, -1.0, -1.0], -1.5)
    return BatchedProgram(lp, backend=backend)


def _memo_counter(key):
    """Counts, per pool worker, how often this worker saw ``key``."""
    holder = worker_memo(("counter", key), list)
    holder.append(1)
    return len(holder)


class TestWorkerMemo:
    def test_outside_worker_builds_fresh_every_call(self):
        built = []

        def factory():
            built.append(object())
            return built[-1]

        first = worker_memo("memo-key", factory)
        second = worker_memo("memo-key", factory)
        assert first is not second
        assert len(built) == 2

    def test_inside_worker_caches_by_key(self, monkeypatch):
        import repro.runtime.runner as runner_module

        monkeypatch.setattr(runner_module, "_IN_WORKER", True)
        runner_module._WORKER_MEMO.clear()
        try:
            calls = []

            def factory():
                calls.append(1)
                return object()

            first = worker_memo(("k", 1), factory)
            again = worker_memo(("k", 1), factory)
            other = worker_memo(("k", 2), factory)
            assert first is again
            assert first is not other
            assert len(calls) == 2
        finally:
            runner_module._WORKER_MEMO.clear()

    def test_registry_is_bounded(self, monkeypatch):
        """Past the cap the oldest entry is evicted — a long-lived worker
        cannot accumulate solver state without limit."""
        import repro.runtime.runner as runner_module

        monkeypatch.setattr(runner_module, "_IN_WORKER", True)
        monkeypatch.setattr(runner_module, "_WORKER_MEMO_MAX", 3)
        runner_module._WORKER_MEMO.clear()
        try:
            for i in range(6):
                worker_memo(("bounded", i), object)
            assert len(runner_module._WORKER_MEMO) == 3
            assert ("bounded", 5) in runner_module._WORKER_MEMO
            assert ("bounded", 0) not in runner_module._WORKER_MEMO
            # a hit refreshes recency: touch the oldest survivor, insert
            # one more, and the untouched middle entry is evicted instead
            worker_memo(("bounded", 3), object)
            worker_memo(("bounded", 6), object)
            assert ("bounded", 3) in runner_module._WORKER_MEMO
            assert ("bounded", 4) not in runner_module._WORKER_MEMO
        finally:
            runner_module._WORKER_MEMO.clear()

    def test_memo_survives_across_tasks_within_a_worker(self):
        """The registry is per-process, not per-task: with more tasks
        than workers, some worker must observe its own earlier entry."""
        with GridRunner(jobs=2) as runner:
            counts = runner.map(_memo_counter, [{"key": "x"}] * 6)
        assert max(counts) >= 2


class TestCanonicalTieBreak:
    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_solve_history_cannot_change_the_answer(
        self, monkeypatch, backend_env
    ):
        _force_backend(monkeypatch, backend_env)
        request = [-0.9]
        direct = _tied_program().solve(request)
        warmed = _tied_program()
        for rhs in ([-1.2], [-2.3], [-0.4]):
            warmed.solve(rhs)
        replayed = warmed.solve(request)
        assert np.array_equal(direct.x, replayed.x)
        assert direct.objective == replayed.objective

    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_update_history_cannot_change_the_answer(
        self, monkeypatch, backend_env
    ):
        """Round-tripping the objective through other values and back must
        land on the same canonical vertex a never-updated program picks."""
        _force_backend(monkeypatch, backend_env)
        request = [-1.5]
        direct = _tied_program().solve(request)
        detoured = _tied_program()
        detoured.update_objective([0, 1, 2], [3.0, 1.0, 2.0])
        detoured.solve(request)
        detoured.update_objective([0, 1, 2], [1.0, 1.0, 1.0])
        replayed = detoured.solve(request)
        assert np.array_equal(direct.x, replayed.x)
        assert direct.objective == replayed.objective

    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_batch_history_cannot_contaminate_the_anchor(
        self, monkeypatch, backend_env
    ):
        """Regression: calibration must run from a cold solver state — a
        preceding solve_many batch used to leak its final basis into the
        anchor, making later single solves depend on batch history."""
        _force_backend(monkeypatch, backend_env)
        request = [-1.5]
        direct = _tied_program().solve(request)
        batched_first = _tied_program()
        batched_first.solve_many([[-2.7], [-0.3], [-1.8]])
        replayed = batched_first.solve(request)
        assert np.array_equal(direct.x, replayed.x)
        assert direct.objective == replayed.objective

    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_repeated_request_is_reproducible(self, monkeypatch, backend_env):
        _force_backend(monkeypatch, backend_env)
        program = _tied_program()
        first = program.solve([-1.1])
        second = program.solve([-1.1])
        assert np.array_equal(first.x, second.x)


class TestSortedVsGiven:
    VARIANTS = [[-1.8], [-0.3], [-2.7], [-1.2], [-0.9]]

    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_orders_agree_on_objectives_and_feasibility(
        self, monkeypatch, backend_env
    ):
        _force_backend(monkeypatch, backend_env)
        given = _tied_program().solve_many(self.VARIANTS, order="given")
        sorted_ = _tied_program().solve_many(self.VARIANTS, order="sorted")
        assert [s is None for s in given] == [s is None for s in sorted_]
        for a, b in zip(given, sorted_):
            if a is not None:
                assert a.objective == pytest.approx(b.objective, abs=1e-9)

    def test_sorted_is_bitwise_stable_on_scipy(self, monkeypatch):
        """The stateless backend solves each variant independently, so
        sorting must change nothing at all — the permutation round-trips."""
        monkeypatch.setenv("REPRO_LP_BACKEND", "scipy")
        given = _tied_program().solve_many(self.VARIANTS, order="given")
        sorted_ = _tied_program().solve_many(self.VARIANTS, order="sorted")
        for a, b in zip(given, sorted_):
            assert np.array_equal(a.x, b.x)

    def test_unknown_order_rejected(self):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            _tied_program().solve_many([[-1.0]], order="descending")


def _assert_search_identical(serial, parallel):
    assert serial.v0 == parallel.v0
    assert serial.avg_network_delay == parallel.avg_network_delay
    assert serial.delays_by_candidate == parallel.delays_by_candidate
    assert np.array_equal(
        serial.placed.placement.assignment,
        parallel.placed.placement.assignment,
    )


class TestWorkerWarmSearch:
    """ISSUE acceptance: jobs=N bit-identical to jobs=1 with warm caches
    on both sides — serial searches are family-warm, pool workers keep
    families in the worker-local cache."""

    CANDIDATES = np.arange(6)

    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_repeated_searches_bit_identical_to_serial(
        self, planetlab, monkeypatch, backend_env
    ):
        """Two searches under different strategies through ONE runner:
        the second parallel search re-solves programs the workers kept
        warm from the first — results must still match fresh serial runs
        bit for bit."""
        _force_backend(monkeypatch, backend_env)
        caps = np.full(planetlab.n_nodes, 0.9)
        shifted = np.linspace(1.0, 2.0, GRID.num_quorums)
        shifted /= shifted.sum()
        strategies = [None, shifted]

        serial = [
            best_many_to_one_placement(
                planetlab, GRID, capacities=caps, strategy=p,
                candidates=self.CANDIDATES,
            )
            for p in strategies
        ]
        with GridRunner(jobs=2) as runner:
            parallel = [
                best_many_to_one_placement(
                    planetlab, GRID, capacities=caps, strategy=p,
                    candidates=self.CANDIDATES, runner=runner,
                )
                for p in strategies
            ]
        for s, p in zip(serial, parallel):
            _assert_search_identical(s, p)

    def test_duplicate_candidates_allowed_on_both_paths(self, planetlab):
        """Point tags carry (position, v0), so duplicated candidates stay
        legal in parallel just as they are serially."""
        caps = np.full(planetlab.n_nodes, 0.9)
        serial = best_many_to_one_placement(
            planetlab, GRID, capacities=caps, candidates=[0, 0, 3]
        )
        with GridRunner(jobs=2) as runner:
            parallel = best_many_to_one_placement(
                planetlab, GRID, capacities=caps, candidates=[0, 0, 3],
                runner=runner,
            )
        _assert_search_identical(serial, parallel)

    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_iterative_parallel_bit_identical(
        self, planetlab, monkeypatch, backend_env
    ):
        """The replayed acceptance scenario: iterative_optimize fans its
        candidate searches over worker-warm pools and must reproduce the
        serial run exactly — every iteration's placement, strategies, and
        metrics, to the bit."""
        _force_backend(monkeypatch, backend_env)
        kwargs = dict(
            capacities=0.9,
            alpha=7.0,
            candidates=self.CANDIDATES,
            max_iterations=3,
        )
        serial = iterative_optimize(planetlab, GRID, **kwargs)
        with GridRunner(jobs=2) as runner:
            parallel = iterative_optimize(
                planetlab, GRID, runner=runner, **kwargs
            )
        assert serial.iterations_run == parallel.iterations_run
        assert serial.response_time == parallel.response_time
        for a, b in zip(serial.history, parallel.history):
            assert np.array_equal(
                a.placed.placement.assignment,
                b.placed.placement.assignment,
            )
            assert np.array_equal(a.strategy.matrix, b.strategy.matrix)
            assert a.phase1_network_delay == b.phase1_network_delay
            assert a.phase2_network_delay == b.phase2_network_delay
            assert a.response_time == b.response_time
