"""Tests for rectangular (general) grid quorum systems — the Kumar et al.
structures the paper cites as [16]."""

import itertools

import numpy as np
import pytest

from repro.analysis.fault_tolerance import min_nodes_to_disable
from repro.core.placement import PlacedQuorumSystem
from repro.core.response_time import evaluate
from repro.core.strategy import ExplicitStrategy
from repro.errors import QuorumSystemError
from repro.placement.one_to_one import grid_onion_placement
from repro.placement.search import best_placement
from repro.quorums.grid import (
    GridQuorumSystem,
    RectangularGridQuorumSystem,
)
from repro.quorums.load_analysis import optimal_load


class TestStructure:
    def test_shape(self):
        g = RectangularGridQuorumSystem(2, 5)
        assert g.universe_size == 10
        assert g.num_quorums == 10
        assert g.min_quorum_size == 6  # 5 + 2 - 1

    def test_quorum_is_row_plus_column(self):
        g = RectangularGridQuorumSystem(2, 3)
        q = g.quorum_for(1, 2)
        row = {g.element(1, c) for c in range(3)}
        col = {g.element(r, 2) for r in range(2)}
        assert q == frozenset(row | col)

    @pytest.mark.parametrize("rows,cols", [(1, 4), (2, 3), (3, 5), (4, 2)])
    def test_all_pairs_intersect(self, rows, cols):
        g = RectangularGridQuorumSystem(rows, cols)
        for a, b in itertools.combinations(g.quorums, 2):
            assert a & b

    def test_element_cell_round_trip(self):
        g = RectangularGridQuorumSystem(3, 4)
        for e in range(12):
            r, c = g.cell(e)
            assert g.element(r, c) == e

    def test_square_grid_is_special_case(self):
        square = GridQuorumSystem(3)
        rect = RectangularGridQuorumSystem(3, 3)
        assert square.quorums == rect.quorums
        assert isinstance(square, RectangularGridQuorumSystem)
        assert square.k == 3

    def test_uniform_load_formula(self):
        g = RectangularGridQuorumSystem(2, 5)
        assert g.uniform_load == pytest.approx(6 / 10)

    def test_invalid_dimensions(self):
        with pytest.raises(QuorumSystemError):
            RectangularGridQuorumSystem(0, 3)
        with pytest.raises(QuorumSystemError):
            RectangularGridQuorumSystem(3, 0)

    def test_optimal_load_closed_form_matches_lp(self):
        g = RectangularGridQuorumSystem(2, 4)
        closed = optimal_load(g).l_opt
        via_lp = optimal_load(g, use_lp=True).l_opt
        # Uniform is optimal for grids; LP can only match it.
        assert via_lp == pytest.approx(closed, abs=1e-9)


class TestPlacementAndAnalysis:
    def test_onion_placement_covers_ball(self, line_topology):
        g = RectangularGridQuorumSystem(2, 4)
        placement = grid_onion_placement(line_topology, g, v0=0)
        assert sorted(placement.assignment) == list(range(8))
        assert placement.is_one_to_one

    def test_onion_farthest_in_origin_cell(self, line_topology):
        g = RectangularGridQuorumSystem(2, 4)
        placement = grid_onion_placement(line_topology, g, v0=0)
        assert placement.node_of(g.element(0, 0)) == 7

    def test_best_placement_dispatch(self, planetlab):
        g = RectangularGridQuorumSystem(3, 4)
        result = best_placement(planetlab, g)
        assert result.placed.placement.is_one_to_one
        assert result.avg_network_delay > 0

    def test_wide_grid_beats_tall_in_load(self):
        """Wider grids have smaller quorum fraction per column access but
        worse load; the load formula captures both shapes."""
        wide = RectangularGridQuorumSystem(2, 8)
        tall = RectangularGridQuorumSystem(8, 2)
        assert wide.uniform_load == tall.uniform_load  # symmetric formula

    def test_fault_tolerance_is_min_dimension(self, planetlab):
        g = RectangularGridQuorumSystem(2, 4)
        placed = PlacedQuorumSystem(
            g,
            grid_onion_placement(planetlab, g, v0=0),
            planetlab,
        )
        # Break every row (2 nodes) or every column (4): min is 2.
        assert min_nodes_to_disable(placed) == 2

    def test_evaluation_pipeline(self, planetlab):
        g = RectangularGridQuorumSystem(2, 6)
        placed = best_placement(planetlab, g).placed
        result = evaluate(
            placed, ExplicitStrategy.uniform(placed), alpha=28.0
        )
        assert result.avg_response_time > result.avg_network_delay > 0
