"""Tests for the Section-3 Q/U experiment harness."""

import numpy as np
import pytest

from repro.core.placement import PlacedQuorumSystem, Placement
from repro.errors import SimulationError
from repro.quorums.threshold import ThresholdQuorumSystem
from repro.sim.experiment import (
    QUExperimentConfig,
    run_qu_experiment,
    select_client_sites,
)


class TestConfig:
    def test_derived_parameters(self):
        cfg = QUExperimentConfig(t=3, clients_per_site=4)
        assert cfg.n_servers == 16
        assert cfg.quorum_size == 13
        assert cfg.n_clients == 40


class TestClientSiteSelection:
    def test_selects_requested_count(self, planetlab):
        qs = ThresholdQuorumSystem(6, 5)
        placed = PlacedQuorumSystem(
            qs, Placement(np.arange(6)), planetlab
        )
        sites = select_client_sites(planetlab, placed, n_sites=10)
        assert len(sites) == 10
        assert len(set(sites.tolist())) == 10

    def test_sites_approximate_global_average(self, planetlab):
        """The chosen sites' average balanced delay is closer to the
        all-nodes average than a random choice would typically be."""
        from repro.core.response_time import evaluate
        from repro.core.strategy import ThresholdBalancedStrategy

        qs = ThresholdQuorumSystem(6, 5)
        placed = PlacedQuorumSystem(
            qs, Placement(np.arange(6)), planetlab
        )
        sites = select_client_sites(planetlab, placed, n_sites=10)
        per_node = evaluate(
            placed, ThresholdBalancedStrategy(), alpha=0.0
        ).per_client_network_delay
        target = per_node.mean()
        chosen_gap = abs(per_node[sites].mean() - target)
        assert chosen_gap < 0.1 * target


class TestRunExperiment:
    def test_small_run_completes(self, planetlab):
        cfg = QUExperimentConfig(
            t=1, clients_per_site=1, duration_ms=800.0, warmup_ms=100.0
        )
        result = run_qu_experiment(planetlab, cfg)
        assert result.operations_completed > 0
        assert result.mean_response_ms > result.mean_network_delay_ms
        assert len(result.server_nodes) == 6
        assert len(result.client_sites) == 10

    def test_measured_close_to_analytic_at_low_load(self, planetlab):
        """With one client per site the measured network delay matches the
        analytic balanced expectation closely."""
        cfg = QUExperimentConfig(
            t=1, clients_per_site=1, duration_ms=1500.0, warmup_ms=200.0
        )
        result = run_qu_experiment(planetlab, cfg)
        assert result.mean_network_delay_ms == pytest.approx(
            result.analytic_network_delay_ms, rel=0.1
        )

    def test_more_clients_more_utilization(self, planetlab):
        low = run_qu_experiment(
            planetlab,
            QUExperimentConfig(
                t=1, clients_per_site=1, duration_ms=800.0, warmup_ms=100.0
            ),
        )
        high = run_qu_experiment(
            planetlab,
            QUExperimentConfig(
                t=1, clients_per_site=6, duration_ms=800.0, warmup_ms=100.0
            ),
        )
        assert (
            high.mean_server_utilization > low.mean_server_utilization
        )

    def test_universe_too_large_rejected(self, line_topology):
        cfg = QUExperimentConfig(t=2)  # needs 11 nodes of 10
        with pytest.raises(SimulationError):
            run_qu_experiment(line_topology, cfg)

    def test_deterministic_given_seed(self, planetlab):
        cfg = QUExperimentConfig(
            t=1, clients_per_site=2, duration_ms=600.0, warmup_ms=100.0,
            seed=11,
        )
        a = run_qu_experiment(planetlab, cfg)
        b = run_qu_experiment(planetlab, cfg)
        assert a.mean_response_ms == b.mean_response_ms
        assert a.operations_completed == b.operations_completed
