"""Equivalence suite for the batched fractional-placement LP.

Pins the build-once/solve-many path (`FractionalProgram` /
`FractionalFamily`, load rows rewritten in place, warm-started HiGHS when
bindings import) against the row-by-row cold reference
(`fractional_placement_loop`): assembled matrices must be *identical*
(including explicitly stored zero-load entries), objectives must match
within 1e-9 across evolving strategies, chosen placements must agree on
Grid and Majority systems, and infeasible capacity vectors must surface
as recorded ``None`` entries — the sweep convention — never as a silent
divergence from the raise-path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.iterative import iterative_optimize
from repro.errors import InfeasibleError, PlacementError, ReproError
from repro.lp import LinearProgram
from repro.placement.fractional import (
    FractionalFamily,
    FractionalProgram,
    element_loads_of_strategy,
    fractional_placement,
    fractional_placement_loop,
)
from repro.placement.many_to_one import (
    best_many_to_one_placement,
    many_to_one_placement,
)
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.threshold import MajorityKind, majority
from repro.runtime.runner import GridRunner

GRID = GridQuorumSystem(3)
MAJORITY = majority(MajorityKind.SIMPLE, 2)


def _loop_arrays(topology, system, v0, strategy=None):
    """The row-by-row assembly, stopped right before the solve."""
    n, n_nodes, m = system.universe_size, topology.n_nodes, system.num_quorums
    caps = topology.capacities
    p = (
        np.full(m, 1.0 / m)
        if strategy is None
        else np.asarray(strategy, dtype=np.float64)
    )
    loads = element_loads_of_strategy(system, p)
    dist = topology.distances_from(v0)

    lp = LinearProgram()
    x = lp.add_block("x", (n, n_nodes), lower=0.0, upper=1.0)
    z = lp.add_block("z", m, lower=0.0)
    for i in range(m):
        lp.set_objective(z.index(i), float(p[i]))
    node_cols = list(range(n_nodes))
    dist_vals = dist.tolist()
    for i, quorum in enumerate(system.quorums):
        for u in quorum:
            cols = [x.index(u, w) for w in node_cols] + [z.index(i)]
            lp.add_le(cols, dist_vals + [-1.0], 0.0)
    for u in range(n):
        lp.add_eq([x.index(u, w) for w in node_cols], [1.0] * n_nodes, 1.0)
    for w in range(n_nodes):
        cols = [x.index(u, w) for u in range(n)]
        lp.add_le(cols, loads.tolist(), float(caps[w]))
    return lp.build()


def _assert_arrays_identical(ref, got):
    for key in ("c", "b_ub", "b_eq"):
        assert np.array_equal(ref[key], got[key]), key
    assert np.array_equal(ref["bounds"], got["bounds"])
    for key in ("A_ub", "A_eq"):
        a, b = ref[key], got[key]
        assert np.array_equal(a.indptr, b.indptr), key
        assert np.array_equal(a.indices, b.indices), key
        assert np.array_equal(a.data, b.data), key


class TestAssemblyIdentity:
    @pytest.mark.parametrize("system", [GRID, MAJORITY], ids=lambda s: s.name)
    def test_batched_matrix_identical_to_loop(self, planetlab, system):
        program = FractionalProgram(planetlab, system, v0=7)
        _assert_arrays_identical(
            _loop_arrays(planetlab, system, 7), program._batched.arrays
        )

    def test_zero_load_elements_keep_matrix_identical(self, planetlab):
        """A point-mass strategy zeroes most element loads; the zero
        entries must stay explicitly stored, exactly as the loop path
        stores them."""
        p = np.zeros(GRID.num_quorums)
        p[2] = 1.0
        loads = element_loads_of_strategy(GRID, p)
        assert np.count_nonzero(loads == 0.0) > 0  # the edge case is real
        program = FractionalProgram(planetlab, GRID, v0=3, strategy=p)
        ref = _loop_arrays(planetlab, GRID, 3, strategy=p)
        _assert_arrays_identical(ref, program._batched.arrays)

    def test_update_preserves_identity_with_rebuilt_loop(self, planetlab):
        """After an in-place strategy update the arrays must equal a loop
        assembly done from scratch with the new strategy."""
        program = FractionalProgram(planetlab, GRID, v0=0)
        p = np.zeros(GRID.num_quorums)
        p[0] = 0.25
        p[4] = 0.75
        program.solve(strategy=p)
        _assert_arrays_identical(
            _loop_arrays(planetlab, GRID, 0, strategy=p),
            program._batched.arrays,
        )


class TestObjectiveEquivalence:
    @pytest.mark.parametrize("system", [GRID, MAJORITY], ids=lambda s: s.name)
    def test_warm_resolves_match_loop_within_1e9(self, planetlab, system):
        rng = np.random.default_rng(11)
        family = FractionalFamily(planetlab, system)
        for _ in range(3):
            p = rng.dirichlet(np.ones(system.num_quorums))
            for v0 in (0, 7, 23):
                batched = family.solve(v0, strategy=p)
                loop = fractional_placement_loop(
                    planetlab, system, v0, strategy=p
                )
                assert batched.objective == pytest.approx(
                    loop.objective, abs=1e-9
                )
                assert np.allclose(batched.x.sum(axis=1), 1.0, atol=1e-6)

    @pytest.mark.parametrize("system", [GRID, MAJORITY], ids=lambda s: s.name)
    def test_rounded_placements_match_loop(self, planetlab, system):
        """The full pipeline chooses the same placement on both paths."""
        caps = np.full(planetlab.n_nodes, 1.0)
        for v0 in (0, 7, 23):
            batched = many_to_one_placement(
                planetlab, system, v0, capacities=caps
            )
            loop = many_to_one_placement(
                planetlab, system, v0, capacities=caps, fractional="loop"
            )
            assert np.array_equal(batched.assignment, loop.assignment)

    def test_in_place_strategy_mutation_not_aliased(self, line_topology):
        """Mutating the caller's strategy array between solves must not
        defeat the staleness check — the program compares against its own
        copy, not the caller's buffer."""
        g = GridQuorumSystem(2)
        program = FractionalProgram(line_topology, g, v0=4)
        p = np.full(g.num_quorums, 1.0 / g.num_quorums)
        program.solve(strategy=p)
        p[:] = 0.0
        p[0] = 1.0
        mutated = program.solve(strategy=p)
        loop = fractional_placement_loop(line_topology, g, 4, strategy=p)
        assert np.array_equal(mutated.element_loads, loop.element_loads)
        assert mutated.objective == pytest.approx(loop.objective, abs=1e-9)

    def test_unknown_fractional_mode_rejected_at_pipeline(self, line_topology):
        with pytest.raises(PlacementError):
            many_to_one_placement(
                line_topology, GridQuorumSystem(2), 0, fractional="lop"
            )

    def test_one_shot_wrapper_honors_strategy(self, planetlab):
        p = np.zeros(GRID.num_quorums)
        p[1] = 1.0
        batched = fractional_placement(planetlab, GRID, 5, strategy=p)
        loop = fractional_placement_loop(planetlab, GRID, 5, strategy=p)
        assert batched.objective == pytest.approx(loop.objective, abs=1e-9)
        assert np.array_equal(batched.element_loads, loop.element_loads)


class TestInfeasibleConvention:
    def test_solve_raises(self, line_topology):
        program = FractionalProgram(line_topology, GridQuorumSystem(2), v0=0)
        with pytest.raises(InfeasibleError):
            program.solve(capacities=np.full(10, 0.1))

    def test_solve_many_records_none_in_place(self, line_topology):
        """Infeasible variants are recorded as None at their position —
        the sweep convention — instead of aborting the whole family."""
        program = FractionalProgram(line_topology, GridQuorumSystem(2), v0=0)
        tight = np.full(10, 0.1)  # total 1.0 < total load 3.0
        loose = np.full(10, 10.0)
        results = program.solve_many([tight, loose, None, tight])
        assert [r is None for r in results] == [True, False, False, True]
        assert results[1].objective == pytest.approx(0.0, abs=1e-6)

    def test_solve_many_after_infeasible_still_correct(self, line_topology):
        """An infeasible variant must not poison later warm solves."""
        g = GridQuorumSystem(2)
        program = FractionalProgram(line_topology, g, v0=4)
        program.solve_many([np.full(10, 0.1)])
        after = program.solve(capacities=np.full(10, 10.0))
        loop = fractional_placement_loop(
            line_topology, g, 4, capacities=np.full(10, 10.0)
        )
        assert after.objective == pytest.approx(loop.objective, abs=1e-9)


class TestFamily:
    def test_programs_cached_per_v0(self, line_topology):
        family = FractionalFamily(line_topology, GridQuorumSystem(2))
        assert family.program(3) is family.program(3)
        assert family.program(3) is not family.program(4)
        assert len(family) == 2

    def test_non_enumerable_rejected_up_front(self, line_topology):
        from repro.quorums.threshold import ThresholdQuorumSystem

        with pytest.raises(PlacementError):
            FractionalFamily(line_topology, ThresholdQuorumSystem(49, 25))

    def test_bad_v0_rejected(self, line_topology):
        family = FractionalFamily(line_topology, GridQuorumSystem(2))
        with pytest.raises(PlacementError):
            family.program(99)


class TestIterativeIntegration:
    CANDIDATES = np.arange(6)

    def test_batched_iterative_matches_loop_path(self, planetlab):
        """Warm batched solves drive the loop through the same first
        iteration as the cold reference: metrics within 1e-9 and the
        placement identical (the uniform-strategy LPs are tie-free here).
        Later iterations run under LP-optimal strategies that zero out
        whole quorums, leaving the elements unique to them genuinely
        unconstrained — tied optimal vertices that the canonical anchored
        solves and the cold reference may break differently and round to
        different (equal-LP-quality) placements, after which the
        trajectories legitimately diverge (that is why
        CACHE_SCHEMA_VERSION was bumped). Beyond iteration 1 the pinned
        contract is therefore structural: each path improves strictly
        until its stopping rule and returns its own best iteration."""
        kwargs = dict(
            capacities=0.9,
            alpha=7.0,
            candidates=self.CANDIDATES,
            max_iterations=4,
        )
        batched = iterative_optimize(
            planetlab, GridQuorumSystem(2), **kwargs
        )
        loop = iterative_optimize(
            planetlab, GridQuorumSystem(2), fractional="loop", **kwargs
        )
        first_b, first_l = batched.history[0], loop.history[0]
        assert np.array_equal(
            first_b.placed.placement.assignment,
            first_l.placed.placement.assignment,
        )
        for metric in (
            "phase1_network_delay",
            "phase2_network_delay",
            "response_time",
        ):
            assert getattr(first_b, metric) == pytest.approx(
                getattr(first_l, metric), abs=1e-9
            ), metric
        for result in (batched, loop):
            times = [rec.response_time for rec in result.history]
            # every iteration kept by the stopping rule strictly improved
            assert all(b < a for a, b in zip(times[:-1], times[1:-1]))
            assert result.response_time == min(times)

    def test_family_shared_across_calls(self, line_topology):
        """One family threaded through a capacity sweep: later calls
        reuse the assembled programs and still match fresh runs."""
        g = GridQuorumSystem(2)
        family = FractionalFamily(line_topology, g)
        shared = [
            iterative_optimize(
                line_topology, g, capacities=c, alpha=7.0,
                candidates=self.CANDIDATES, family=family,
            ).response_time
            for c in (0.9, 1.0, 1.2)
        ]
        fresh = [
            iterative_optimize(
                line_topology, g, capacities=c, alpha=7.0,
                candidates=self.CANDIDATES,
            ).response_time
            for c in (0.9, 1.0, 1.2)
        ]
        assert len(family) == len(self.CANDIDATES)
        assert shared == pytest.approx(fresh, abs=1e-9)

    def test_loop_mode_rejects_family(self, line_topology):
        g = GridQuorumSystem(2)
        with pytest.raises(ReproError):
            iterative_optimize(
                line_topology, g, capacities=1.0, alpha=7.0,
                candidates=self.CANDIDATES, fractional="loop",
                family=FractionalFamily(line_topology, g),
            )

    def test_unknown_fractional_mode_rejected(self, line_topology):
        with pytest.raises(ReproError):
            iterative_optimize(
                line_topology, GridQuorumSystem(2), capacities=1.0,
                alpha=7.0, fractional="glpk",
            )


class TestParallelSearch:
    def test_parallel_candidates_bit_identical_to_serial(self, planetlab):
        """best_many_to_one_placement over a parallel runner hands its
        workers worker-local warm families — still bit-identical to the
        serial (family-warm) search for any worker count, because
        canonical anchored solves make every candidate's result a pure
        function of the request."""
        caps = np.full(planetlab.n_nodes, 0.9)
        serial = best_many_to_one_placement(
            planetlab, GRID, capacities=caps, candidates=np.arange(6)
        )
        with GridRunner(jobs=2) as runner:
            parallel = best_many_to_one_placement(
                planetlab, GRID, capacities=caps,
                candidates=np.arange(6), runner=runner,
            )
        assert serial.v0 == parallel.v0
        assert serial.avg_network_delay == parallel.avg_network_delay
        assert serial.delays_by_candidate == parallel.delays_by_candidate
        assert np.array_equal(
            serial.placed.placement.assignment,
            parallel.placed.placement.assignment,
        )
