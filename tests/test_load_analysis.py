"""Tests for optimal-load computation (closed forms vs LP)."""

import numpy as np
import pytest

from repro.errors import QuorumSystemError
from repro.quorums.base import EnumeratedQuorumSystem
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.load_analysis import (
    load_of_strategy,
    optimal_load,
)
from repro.quorums.singleton import SingletonQuorumSystem
from repro.quorums.threshold import ThresholdQuorumSystem


class TestClosedForms:
    def test_singleton(self):
        assert optimal_load(SingletonQuorumSystem()).l_opt == 1.0

    @pytest.mark.parametrize("n,q", [(3, 2), (5, 3), (21, 17), (49, 25)])
    def test_threshold(self, n, q):
        qs = ThresholdQuorumSystem(n, q)
        assert optimal_load(qs).l_opt == pytest.approx(q / n)

    @pytest.mark.parametrize("k", [2, 3, 5, 7])
    def test_grid(self, k):
        g = GridQuorumSystem(k)
        analysis = optimal_load(g)
        assert analysis.l_opt == pytest.approx((2 * k - 1) / k**2)
        # The witnessing strategy attains the claimed load.
        assert load_of_strategy(g, analysis.strategy) == pytest.approx(
            analysis.l_opt
        )


class TestLPCrossValidation:
    @pytest.mark.parametrize("n,q", [(3, 2), (5, 3), (7, 4)])
    def test_threshold_lp_matches_closed_form(self, n, q):
        qs = ThresholdQuorumSystem(n, q)
        assert optimal_load(qs, use_lp=True).l_opt == pytest.approx(
            q / n, abs=1e-9
        )

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_grid_lp_matches_closed_form(self, k):
        g = GridQuorumSystem(k)
        assert optimal_load(g, use_lp=True).l_opt == pytest.approx(
            (2 * k - 1) / k**2, abs=1e-9
        )

    def test_lp_strategy_is_distribution(self):
        analysis = optimal_load(GridQuorumSystem(3), use_lp=True)
        assert analysis.strategy is not None
        assert analysis.strategy.sum() == pytest.approx(1.0)
        assert np.all(analysis.strategy >= -1e-9)

    def test_asymmetric_system(self):
        # Quorums {0,1}, {0,2}: element 0 is in every quorum, L_opt = 1.
        qs = EnumeratedQuorumSystem(
            [frozenset({0, 1}), frozenset({0, 2})], name="star"
        )
        assert optimal_load(qs, use_lp=True).l_opt == pytest.approx(1.0)

    def test_non_enumerable_lp_rejected(self):
        qs = ThresholdQuorumSystem(49, 25)
        with pytest.raises(QuorumSystemError):
            optimal_load(qs, use_lp=True)


class TestLoadOfStrategy:
    def test_uniform_grid(self):
        g = GridQuorumSystem(3)
        uniform = np.full(9, 1.0 / 9.0)
        assert load_of_strategy(g, uniform) == pytest.approx(5 / 9)

    def test_point_mass(self):
        g = GridQuorumSystem(3)
        p = np.zeros(9)
        p[0] = 1.0
        assert load_of_strategy(g, p) == pytest.approx(1.0)

    def test_invalid_strategy_rejected(self):
        g = GridQuorumSystem(2)
        with pytest.raises(QuorumSystemError):
            load_of_strategy(g, np.array([0.5, 0.5]))  # wrong length
        with pytest.raises(QuorumSystemError):
            load_of_strategy(g, np.full(4, 0.3))  # does not sum to 1
