"""Tests for the iterative placement/strategy algorithm (Section 4.2)."""

import numpy as np
import pytest

from repro.core.iterative import iterative_optimize
from repro.core.response_time import evaluate
from repro.placement.search import best_placement, uniform_strategy_for
from repro.quorums.grid import GridQuorumSystem


CANDIDATES = np.arange(6)  # keep the per-iteration LP count small


class TestIterative:
    def test_runs_and_terminates(self, line_topology):
        result = iterative_optimize(
            line_topology,
            GridQuorumSystem(2),
            capacities=1.0,
            alpha=7.0,
            candidates=CANDIDATES,
            max_iterations=5,
        )
        assert 1 <= result.iterations_run <= 5

    def test_history_response_times_improve_until_stop(self, line_topology):
        result = iterative_optimize(
            line_topology,
            GridQuorumSystem(2),
            capacities=1.0,
            alpha=7.0,
            candidates=CANDIDATES,
        )
        history = result.history
        # Strictly improving until the last (non-improving) record.
        for prev, cur in zip(history, history[1:-1]):
            assert cur.response_time < prev.response_time

    def test_returns_best_iteration(self, line_topology):
        result = iterative_optimize(
            line_topology,
            GridQuorumSystem(2),
            capacities=1.0,
            alpha=7.0,
            candidates=CANDIDATES,
        )
        assert result.response_time == pytest.approx(
            min(rec.response_time for rec in result.history)
        )

    def test_phase2_never_hurts_network_delay(self, line_topology):
        result = iterative_optimize(
            line_topology,
            GridQuorumSystem(2),
            capacities=1.0,
            alpha=0.0,
            candidates=CANDIDATES,
        )
        for rec in result.history:
            assert (
                rec.phase2_network_delay <= rec.phase1_network_delay + 1e-6
            )

    def test_final_strategy_consistent_with_placement(self, line_topology):
        result = iterative_optimize(
            line_topology,
            GridQuorumSystem(2),
            capacities=1.0,
            alpha=7.0,
            candidates=CANDIDATES,
        )
        again = evaluate(result.placed, result.strategy, alpha=7.0)
        assert again.avg_response_time == pytest.approx(
            result.response_time
        )

    def test_many_to_one_improves_on_one_to_one(self, planetlab):
        """Figure 8.9's headline: the iterative result's network delay
        beats the one-to-one placement's uniform delay."""
        system = GridQuorumSystem(4)
        o2o = best_placement(planetlab, system).placed
        o2o_delay = evaluate(
            o2o, uniform_strategy_for(o2o)
        ).avg_network_delay
        result = iterative_optimize(
            planetlab,
            system,
            capacities=0.8,
            alpha=0.0,
            candidates=np.arange(8),
            max_iterations=2,
        )
        final_delay = result.history[0].phase2_network_delay
        assert final_delay < o2o_delay

    def test_scalar_and_vector_capacities_agree(self, line_topology):
        a = iterative_optimize(
            line_topology,
            GridQuorumSystem(2),
            capacities=0.9,
            alpha=7.0,
            candidates=CANDIDATES,
        )
        b = iterative_optimize(
            line_topology,
            GridQuorumSystem(2),
            capacities=np.full(10, 0.9),
            alpha=7.0,
            candidates=CANDIDATES,
        )
        assert a.response_time == pytest.approx(b.response_time)
