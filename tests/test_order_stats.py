"""Tests for exact subset-maximum order statistics.

These formulas replace enumeration of C(n, q) quorums, so they are
cross-validated against brute-force enumeration on small instances.
"""

import itertools

import numpy as np
import pytest

from repro.quorums.order_stats import (
    cdf_max_of_random_subset,
    expected_max_of_random_subset,
    max_order_statistic_pmf,
)


def brute_force_expected_max(values, q):
    values = list(values)
    subsets = list(itertools.combinations(values, q))
    return sum(max(s) for s in subsets) / len(subsets)


class TestPmf:
    def test_sums_to_one(self):
        for n, q in [(5, 3), (10, 1), (10, 10), (21, 17)]:
            pmf = max_order_statistic_pmf(n, q)
            assert pmf.sum() == pytest.approx(1.0)

    def test_zero_below_q(self):
        pmf = max_order_statistic_pmf(8, 5)
        assert np.all(pmf[:4] == 0.0)
        assert np.all(pmf[4:] > 0.0)

    def test_q_equals_n_is_point_mass(self):
        pmf = max_order_statistic_pmf(6, 6)
        assert pmf[-1] == pytest.approx(1.0)
        assert pmf[:-1].sum() == 0.0

    def test_q_one_is_uniform(self):
        pmf = max_order_statistic_pmf(7, 1)
        assert np.allclose(pmf, 1.0 / 7.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            max_order_statistic_pmf(5, 0)
        with pytest.raises(ValueError):
            max_order_statistic_pmf(5, 6)


class TestExpectedMax:
    @pytest.mark.parametrize("n,q", [(5, 3), (6, 4), (7, 2), (8, 5)])
    def test_matches_brute_force(self, n, q):
        rng = np.random.default_rng(n * 10 + q)
        values = rng.uniform(0, 100, size=n)
        exact = expected_max_of_random_subset(values, q)
        brute = brute_force_expected_max(values, q)
        assert exact == pytest.approx(brute, rel=1e-12)

    def test_handles_ties(self):
        values = np.array([5.0, 5.0, 5.0, 10.0])
        exact = expected_max_of_random_subset(values, 2)
        brute = brute_force_expected_max(values, 2)
        assert exact == pytest.approx(brute)

    def test_unsorted_input(self):
        values = np.array([30.0, 10.0, 20.0])
        assert expected_max_of_random_subset(values, 2) == pytest.approx(
            brute_force_expected_max(values, 2)
        )

    def test_full_subset_is_max(self):
        values = np.array([1.0, 9.0, 4.0])
        assert expected_max_of_random_subset(values, 3) == 9.0

    def test_monotone_in_q(self):
        values = np.random.default_rng(3).uniform(0, 50, size=9)
        e = [
            expected_max_of_random_subset(values, q) for q in range(1, 10)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(e, e[1:]))


class TestCdf:
    def test_matches_brute_force(self):
        values = np.array([3.0, 1.0, 4.0, 1.5, 9.0])
        q = 3
        thresholds = np.array([0.5, 1.5, 3.0, 4.0, 9.0, 10.0])
        subsets = list(itertools.combinations(values, q))
        brute = np.array(
            [
                sum(1 for s in subsets if max(s) <= t) / len(subsets)
                for t in thresholds
            ]
        )
        exact = cdf_max_of_random_subset(values, q, thresholds)
        assert np.allclose(exact, brute)

    def test_limits(self):
        values = np.arange(1.0, 8.0)
        cdf = cdf_max_of_random_subset(values, 4, np.array([0.0, 100.0]))
        assert cdf[0] == 0.0
        assert cdf[1] == 1.0
