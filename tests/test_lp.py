"""Tests for the sparse LP layer."""

import numpy as np
import pytest

from repro.errors import InfeasibleError, SolverError
from repro.lp import LinearProgram, solve


class TestVariableBlocks:
    def test_block_indexing_2d(self):
        lp = LinearProgram()
        x = lp.add_block("x", (3, 4))
        assert x.index(0, 0) == 0
        assert x.index(1, 0) == 4
        assert x.index(2, 3) == 11

    def test_blocks_are_contiguous(self):
        lp = LinearProgram()
        a = lp.add_block("a", 3)
        b = lp.add_block("b", (2, 2))
        assert a.index(2) == 2
        assert b.index(0, 0) == 3
        assert lp.n_variables == 7

    def test_duplicate_block_rejected(self):
        lp = LinearProgram()
        lp.add_block("x", 2)
        with pytest.raises(SolverError):
            lp.add_block("x", 2)

    def test_unknown_block_lookup(self):
        lp = LinearProgram()
        with pytest.raises(SolverError):
            lp.block("nope")

    def test_wrong_arity_index(self):
        lp = LinearProgram()
        x = lp.add_block("x", (2, 2))
        with pytest.raises(SolverError):
            x.index(1)

    def test_reshape_extracts_block(self):
        lp = LinearProgram()
        lp.add_block("a", 2)
        b = lp.add_block("b", (2, 2))
        flat = np.arange(6, dtype=float)
        assert np.array_equal(b.reshape(flat), [[2.0, 3.0], [4.0, 5.0]])


class TestSolve:
    def test_simple_minimization(self):
        # min x + 2y  s.t. x + y >= 1, x,y >= 0  -> x=1, y=0.
        lp = LinearProgram()
        v = lp.add_block("v", 2)
        lp.set_objective(v.index(0), 1.0)
        lp.set_objective(v.index(1), 2.0)
        lp.add_le([v.index(0), v.index(1)], [-1.0, -1.0], -1.0)
        sol = solve(lp)
        assert sol.objective == pytest.approx(1.0)
        assert sol.x[0] == pytest.approx(1.0)

    def test_equality_constraint(self):
        # min x  s.t. x + y == 2, y <= 0.5  -> x = 1.5.
        lp = LinearProgram()
        v = lp.add_block("v", 2)
        lp.set_objective(v.index(0), 1.0)
        lp.add_eq([v.index(0), v.index(1)], [1.0, 1.0], 2.0)
        lp.add_le([v.index(1)], [1.0], 0.5)
        sol = solve(lp)
        assert sol.x[0] == pytest.approx(1.5)

    def test_bounds_respected(self):
        lp = LinearProgram()
        v = lp.add_block("v", 1, lower=2.0, upper=5.0)
        lp.set_objective(v.index(0), 1.0)
        sol = solve(lp)
        assert sol.x[0] == pytest.approx(2.0)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        v = lp.add_block("v", 1, lower=0.0, upper=1.0)
        lp.set_objective(v.index(0), 1.0)
        lp.add_eq([v.index(0)], [1.0], 5.0)
        with pytest.raises(InfeasibleError):
            solve(lp)

    def test_unbounded_raises(self):
        lp = LinearProgram()
        v = lp.add_block("v", 1, lower=-np.inf, upper=np.inf)
        lp.set_objective(v.index(0), 1.0)
        with pytest.raises(SolverError):
            solve(lp)

    def test_empty_program_rejected(self):
        with pytest.raises(SolverError):
            LinearProgram().build()

    def test_objective_accumulates(self):
        lp = LinearProgram()
        v = lp.add_block("v", 1, lower=1.0, upper=1.0)
        lp.set_objective(v.index(0), 1.0)
        lp.set_objective(v.index(0), 2.0)
        sol = solve(lp)
        assert sol.objective == pytest.approx(3.0)

    def test_block_values_helper(self):
        lp = LinearProgram()
        lp.add_block("a", 1, lower=1.0, upper=1.0)
        b = lp.add_block("b", (2,), lower=2.0, upper=2.0)
        lp.set_objective(b.index(0), 1.0)
        sol = solve(lp)
        assert np.allclose(sol.block_values(lp, "b"), [2.0, 2.0])

    def test_mismatched_row_rejected(self):
        lp = LinearProgram()
        v = lp.add_block("v", 2)
        with pytest.raises(SolverError):
            lp.add_le([v.index(0)], [1.0, 2.0], 0.0)

    def test_constraint_counts(self):
        lp = LinearProgram()
        v = lp.add_block("v", 2)
        lp.add_le([v.index(0)], [1.0], 1.0)
        lp.add_eq([v.index(1)], [1.0], 0.5)
        assert lp.n_constraints == 2
        assert lp.n_le_constraints == 1
        assert lp.n_eq_constraints == 1


class TestVectorizedAssembly:
    """The broadcast batch assembler must build the same matrices as the
    row-by-row path (the batched backend's bit-compatibility anchor)."""

    @staticmethod
    def _random_rows(rng, n_rows, n_vars):
        rows, cols, vals, rhs = [], [], [], []
        for r in range(n_rows):
            nnz = rng.integers(1, n_vars + 1)
            chosen = rng.choice(n_vars, size=nnz, replace=False)
            values = rng.normal(size=nnz)
            rows.append(np.full(nnz, r))
            cols.append(chosen)
            vals.append(values)
            rhs.append(float(rng.normal()))
        return (
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
            np.asarray(rhs),
        )

    def test_loop_and_batch_build_identical_matrices(self):
        rng = np.random.default_rng(7)
        n_vars, n_rows = 12, 9
        rows, cols, vals, rhs = self._random_rows(rng, n_rows, n_vars)

        loop_lp = LinearProgram()
        loop_lp.add_block("x", n_vars)
        for r in range(n_rows):
            mask = rows == r
            loop_lp.add_le(
                cols[mask].tolist(), vals[mask].tolist(), float(rhs[r])
            )
            loop_lp.add_eq(
                cols[mask].tolist(), vals[mask].tolist(), float(rhs[r])
            )

        batch_lp = LinearProgram()
        batch_lp.add_block("x", n_vars)
        batch_lp.add_le_many(rows, cols, vals, rhs)
        batch_lp.add_eq_many(rows, cols, vals, rhs)

        loop_arrays = loop_lp.build()
        batch_arrays = batch_lp.build()
        for key in ("A_ub", "A_eq"):
            assert (
                loop_arrays[key].toarray() == batch_arrays[key].toarray()
            ).all()
        assert np.array_equal(loop_arrays["b_ub"], batch_arrays["b_ub"])
        assert np.array_equal(loop_arrays["b_eq"], batch_arrays["b_eq"])

    def test_objective_many_matches_scalar_loop(self):
        coefs = np.array([0.5, 0.0, -1.5, 2.25])
        loop_lp = LinearProgram()
        loop_lp.add_block("x", 4)
        for i, c in enumerate(coefs):
            loop_lp.set_objective(i, float(c))
        batch_lp = LinearProgram()
        batch_lp.add_block("x", 4)
        batch_lp.set_objective_many(np.arange(4), coefs)
        assert np.array_equal(
            loop_lp.build()["c"], batch_lp.build()["c"]
        )

    def test_objective_many_accumulates(self):
        lp = LinearProgram()
        lp.add_block("x", 2)
        lp.set_objective_many([0, 0, 1], [1.0, 2.0, 5.0])
        lp.set_objective(0, 4.0)
        assert np.array_equal(lp.build()["c"], [7.0, 5.0])

    def test_batch_length_mismatch_rejected(self):
        lp = LinearProgram()
        lp.add_block("x", 3)
        with pytest.raises(SolverError):
            lp.add_le_many([0, 0], [0, 1, 2], [1.0, 1.0, 1.0], [0.0])
        with pytest.raises(SolverError):
            lp.set_objective_many([0, 1], [1.0])

    def test_batch_row_index_out_of_range_rejected(self):
        lp = LinearProgram()
        lp.add_block("x", 3)
        with pytest.raises(SolverError):
            lp.add_le_many([0, 2], [0, 1], [1.0, 1.0], [0.0])

    def test_mixed_single_and_batch_rows(self):
        lp = LinearProgram()
        v = lp.add_block("x", 2)
        first = lp.add_le([v.index(0)], [1.0], 1.0)
        batch = lp.add_le_many(
            [0, 1], [v.index(0), v.index(1)], [2.0, 3.0], [0.5, 0.25]
        )
        assert (first, batch) == (0, 1)
        arrays = lp.build()
        assert np.array_equal(
            arrays["A_ub"].toarray(),
            [[1.0, 0.0], [2.0, 0.0], [0.0, 3.0]],
        )
        assert np.array_equal(arrays["b_ub"], [1.0, 0.5, 0.25])
