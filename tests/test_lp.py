"""Tests for the sparse LP layer."""

import numpy as np
import pytest

from repro.errors import InfeasibleError, SolverError
from repro.lp import LinearProgram, solve


class TestVariableBlocks:
    def test_block_indexing_2d(self):
        lp = LinearProgram()
        x = lp.add_block("x", (3, 4))
        assert x.index(0, 0) == 0
        assert x.index(1, 0) == 4
        assert x.index(2, 3) == 11

    def test_blocks_are_contiguous(self):
        lp = LinearProgram()
        a = lp.add_block("a", 3)
        b = lp.add_block("b", (2, 2))
        assert a.index(2) == 2
        assert b.index(0, 0) == 3
        assert lp.n_variables == 7

    def test_duplicate_block_rejected(self):
        lp = LinearProgram()
        lp.add_block("x", 2)
        with pytest.raises(SolverError):
            lp.add_block("x", 2)

    def test_unknown_block_lookup(self):
        lp = LinearProgram()
        with pytest.raises(SolverError):
            lp.block("nope")

    def test_wrong_arity_index(self):
        lp = LinearProgram()
        x = lp.add_block("x", (2, 2))
        with pytest.raises(SolverError):
            x.index(1)

    def test_reshape_extracts_block(self):
        lp = LinearProgram()
        lp.add_block("a", 2)
        b = lp.add_block("b", (2, 2))
        flat = np.arange(6, dtype=float)
        assert np.array_equal(b.reshape(flat), [[2.0, 3.0], [4.0, 5.0]])


class TestSolve:
    def test_simple_minimization(self):
        # min x + 2y  s.t. x + y >= 1, x,y >= 0  -> x=1, y=0.
        lp = LinearProgram()
        v = lp.add_block("v", 2)
        lp.set_objective(v.index(0), 1.0)
        lp.set_objective(v.index(1), 2.0)
        lp.add_le([v.index(0), v.index(1)], [-1.0, -1.0], -1.0)
        sol = solve(lp)
        assert sol.objective == pytest.approx(1.0)
        assert sol.x[0] == pytest.approx(1.0)

    def test_equality_constraint(self):
        # min x  s.t. x + y == 2, y <= 0.5  -> x = 1.5.
        lp = LinearProgram()
        v = lp.add_block("v", 2)
        lp.set_objective(v.index(0), 1.0)
        lp.add_eq([v.index(0), v.index(1)], [1.0, 1.0], 2.0)
        lp.add_le([v.index(1)], [1.0], 0.5)
        sol = solve(lp)
        assert sol.x[0] == pytest.approx(1.5)

    def test_bounds_respected(self):
        lp = LinearProgram()
        v = lp.add_block("v", 1, lower=2.0, upper=5.0)
        lp.set_objective(v.index(0), 1.0)
        sol = solve(lp)
        assert sol.x[0] == pytest.approx(2.0)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        v = lp.add_block("v", 1, lower=0.0, upper=1.0)
        lp.set_objective(v.index(0), 1.0)
        lp.add_eq([v.index(0)], [1.0], 5.0)
        with pytest.raises(InfeasibleError):
            solve(lp)

    def test_unbounded_raises(self):
        lp = LinearProgram()
        v = lp.add_block("v", 1, lower=-np.inf, upper=np.inf)
        lp.set_objective(v.index(0), 1.0)
        with pytest.raises(SolverError):
            solve(lp)

    def test_empty_program_rejected(self):
        with pytest.raises(SolverError):
            LinearProgram().build()

    def test_objective_accumulates(self):
        lp = LinearProgram()
        v = lp.add_block("v", 1, lower=1.0, upper=1.0)
        lp.set_objective(v.index(0), 1.0)
        lp.set_objective(v.index(0), 2.0)
        sol = solve(lp)
        assert sol.objective == pytest.approx(3.0)

    def test_block_values_helper(self):
        lp = LinearProgram()
        lp.add_block("a", 1, lower=1.0, upper=1.0)
        b = lp.add_block("b", (2,), lower=2.0, upper=2.0)
        lp.set_objective(b.index(0), 1.0)
        sol = solve(lp)
        assert np.allclose(sol.block_values(lp, "b"), [2.0, 2.0])

    def test_mismatched_row_rejected(self):
        lp = LinearProgram()
        v = lp.add_block("v", 2)
        with pytest.raises(SolverError):
            lp.add_le([v.index(0)], [1.0, 2.0], 0.0)

    def test_constraint_counts(self):
        lp = LinearProgram()
        v = lp.add_block("v", 2)
        lp.add_le([v.index(0)], [1.0], 1.0)
        lp.add_eq([v.index(1)], [1.0], 0.5)
        assert lp.n_constraints == 2
