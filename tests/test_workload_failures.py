"""Composition tests: open-loop Poisson workload + crash windows.

``sim/workload.py`` provides the arrival process, ``sim/failures.py`` the
crash schedule; this suite pins their composition through the generic
simulator's open-loop mode: arrivals keep coming while a node is down,
timeouts fire and resample, the balanced strategy keeps completing
operations through the outage, and the whole run is a pure function of
its seeds.
"""

import numpy as np
import pytest

from repro.core.placement import PlacedQuorumSystem, Placement
from repro.core.strategy import ThresholdBalancedStrategy
from repro.quorums.threshold import ThresholdQuorumSystem
from repro.sim.failures import CrashWindow, FailureSchedule
from repro.sim.generic import GenericQuorumSimulation
from repro.sim.workload import PoissonArrivals, spread_clients


@pytest.fixture()
def maj_placed(line_topology):
    return PlacedQuorumSystem(
        ThresholdQuorumSystem(5, 3),
        Placement([0, 2, 4, 6, 8]),
        line_topology,
    )


def _run(maj_placed, seed=11, schedule=None, rate=0.02, duration=4000.0):
    sim = GenericQuorumSimulation(
        maj_placed,
        ThresholdBalancedStrategy(),
        client_nodes=np.array(spread_clients(np.array([0, 5, 9]), 2)),
        service_time_ms=0.0,
        failures=schedule,
        timeout_ms=250.0 if schedule is not None else 0.0,
        seed=seed,
        arrivals=PoissonArrivals(rate_per_ms=rate, seed=seed + 1),
    )
    return sim, sim.run(duration_ms=duration)


class TestOpenLoopUnderCrash:
    SCHEDULE = [CrashWindow(4, 500.0, 2500.0)]

    def test_timeouts_fire_and_work_is_dropped(self, maj_placed):
        _sim, result = _run(
            maj_placed, schedule=FailureSchedule(list(self.SCHEDULE))
        )
        assert result.timeouts_total > 0
        assert result.requests_dropped > 0

    def test_balanced_strategy_recovers_during_the_outage(self, maj_placed):
        """Resampled quorums route around the dead node: operations keep
        completing strictly inside the crash window."""
        sim, result = _run(
            maj_placed, schedule=FailureSchedule(list(self.SCHEDULE))
        )
        assert result.operations_completed > 0
        inside = [
            r
            for c in sim.clients
            for r in c.records
            if 700.0 < r.completed_at_ms < 2400.0
        ]
        assert inside

    def test_open_loop_keeps_injecting_while_down(self, maj_placed):
        """Arrivals are independent of completions: the healthy and the
        degraded run issue the same first-attempt schedule (same arrival
        seed), so the degraded run completes no more, and with retries
        runs strictly slower on average."""
        _sim, healthy = _run(maj_placed, schedule=None)
        _sim, degraded = _run(
            maj_placed, schedule=FailureSchedule(list(self.SCHEDULE))
        )
        assert degraded.operations_completed <= healthy.operations_completed
        assert (
            degraded.stats.mean_response_ms > healthy.stats.mean_response_ms
        )

    def test_deterministic_under_fixed_seeds(self, maj_placed):
        runs = []
        for _ in range(2):
            sim, result = _run(
                maj_placed, schedule=FailureSchedule(list(self.SCHEDULE))
            )
            records = [
                (r.client_id, r.issued_at_ms, r.completed_at_ms,
                 r.network_delay_ms)
                for c in sim.clients
                for r in c.records
            ]
            runs.append(
                (
                    result.operations_completed,
                    result.timeouts_total,
                    result.requests_dropped,
                    records,
                )
            )
        assert runs[0] == runs[1]

    def test_seed_changes_the_run(self, maj_placed):
        _sim, a = _run(
            maj_placed, seed=11, schedule=FailureSchedule(list(self.SCHEDULE))
        )
        _sim, b = _run(
            maj_placed, seed=12, schedule=FailureSchedule(list(self.SCHEDULE))
        )
        assert (
            a.stats.mean_response_ms != b.stats.mean_response_ms
            or a.operations_completed != b.operations_completed
        )


class TestOpenLoopBasics:
    def test_each_arrival_is_one_operation_at_most(self, maj_placed):
        sim, result = _run(maj_placed, rate=0.01)
        assert all(len(c.records) <= 1 for c in sim.clients)
        assert result.operations_completed <= len(sim.clients)

    def test_round_robin_spreads_over_client_nodes(self, maj_placed):
        sim, _result = _run(maj_placed, rate=0.05)
        nodes = {c.node for c in sim.clients}
        assert nodes == {0, 5, 9}


class TestDynamicsTraceComposition:
    """A dynamics churn trace exports to the same schedule machinery."""

    def test_trace_schedule_drives_the_simulator(self, maj_placed):
        from repro.dynamics.events import ChurnEvent, ScenarioTrace

        trace = ScenarioTrace(
            10,
            4,
            [
                ChurnEvent(epoch=1, node=4, up=False),
                ChurnEvent(epoch=3, node=4, up=True),
            ],
            epoch_ms=1000.0,
        )
        schedule = trace.to_failure_schedule()
        assert schedule.windows == (CrashWindow(4, 1000.0, 3000.0),)
        _sim, result = _run(maj_placed, schedule=schedule)
        assert result.timeouts_total > 0
        assert result.operations_completed > 0

    def test_trace_schedule_merges_with_manual_windows(self, maj_placed):
        from repro.dynamics.events import ChurnEvent, ScenarioTrace

        trace = ScenarioTrace(
            10, 4, [ChurnEvent(epoch=1, node=4, up=False)], epoch_ms=1000.0
        )
        schedule = trace.to_failure_schedule()
        assert schedule.windows == (CrashWindow(4, 1000.0, 4000.0),)
        schedule.add(4, 2000.0, 5000.0)  # overlapping manual outage
        assert schedule.windows == (CrashWindow(4, 1000.0, 5000.0),)
        assert schedule.downtime(4, 5000.0) == pytest.approx(4000.0)


class TestRequestConservation:
    """Every request the clients issue must be accounted for exactly:
    ``issued == processed + dropped + in_flight``."""

    SCHEDULE = [CrashWindow(4, 500.0, 2500.0), CrashWindow(0, 1000.0, 1500.0)]

    @staticmethod
    def _conserved(result):
        return result.requests_issued == (
            result.requests_processed
            + result.requests_dropped
            + result.requests_in_flight
        )

    def test_identity_holds_without_failures(self, maj_placed):
        _sim, result = _run(maj_placed, rate=0.05)
        assert result.requests_issued > 0
        assert self._conserved(result)
        assert result.requests_in_flight >= 0

    def test_identity_holds_across_failure_windows(self, maj_placed):
        _sim, result = _run(
            maj_placed,
            rate=0.05,
            schedule=FailureSchedule(list(self.SCHEDULE)),
        )
        assert result.requests_dropped > 0
        assert self._conserved(result)
        assert result.requests_in_flight >= 0

    def test_in_flight_drains_to_zero_with_a_long_horizon(self, maj_placed):
        """Arrivals stop at the horizon but events keep firing until the
        clock runs out; with ample slack after the last arrival and the
        last crash window, nothing can still be in flight."""
        sim = GenericQuorumSimulation(
            maj_placed,
            ThresholdBalancedStrategy(),
            client_nodes=np.array([0, 5, 9]),
            service_time_ms=1.0,
            failures=FailureSchedule(list(self.SCHEDULE)),
            timeout_ms=250.0,
            seed=3,
            arrivals=PoissonArrivals(rate_per_ms=0.05, seed=4),
        )
        # Arrivals land in [0, 4000); +6000 ms of slack dwarfs every
        # RTT/timeout/retry chain on the 9-hop line.
        result = sim.run(duration_ms=10_000.0)
        assert self._conserved(result)
        assert result.requests_in_flight == 0


class TestServerCrashDropsQueue:
    """Unit-level pin of the `_Server` crash semantics the fluid backend's
    drop masks approximate: a crash takes the in-flight request *and* the
    queue with it, each drop counted exactly once."""

    def _server(self, line_topology, windows):
        from repro.sim.engine import Simulator
        from repro.sim.generic import _Access, _Server
        from repro.sim.network import SimNetwork

        sim = Simulator()
        network = SimNetwork(sim, line_topology)
        server = _Server(
            node=4,
            service_time_ms=10.0,
            sim=sim,
            network=network,
            failures=FailureSchedule(windows),
        )
        replies = []
        def access():
            return _Access(
                client_node=4, units=1,
                on_reply=lambda m: replies.append(sim.now),
            )
        return sim, server, access, replies

    def test_crash_drops_in_flight_and_queued(self, line_topology):
        sim, server, access, replies = self._server(
            line_topology, [CrashWindow(4, 5.0, 50.0)]
        )
        # Three requests before the crash: one enters service (reply due
        # at t=10, inside the window), two queue behind it.
        for t in (0.0, 1.0, 2.0):
            sim.schedule_at(t, lambda: server.on_request(access()))
        # One request lands mid-window (t=20): dropped on arrival.
        sim.schedule_at(20.0, lambda: server.on_request(access()))
        # One lands after recovery (t=60): processed normally.
        sim.schedule_at(60.0, lambda: server.on_request(access()))
        sim.run(until=100.0)

        issued = 5
        assert server.requests_dropped == 4  # 1 in flight + 2 queued + 1 down
        assert server.requests_processed == 1
        assert replies == [70.0]  # t=60 arrival + 10 ms service, same node
        assert not server.queue and not server.busy
        assert issued == server.requests_processed + server.requests_dropped


class TestWorkloadHelpers:
    """Satellite pins for the vectorized workload helpers."""

    def test_sample_until_deterministic_and_sorted(self):
        a = PoissonArrivals(rate_per_ms=0.7, seed=42)
        t1 = a.sample_until(5_000.0)
        t2 = PoissonArrivals(rate_per_ms=0.7, seed=42).sample_until(5_000.0)
        np.testing.assert_array_equal(t1, t2)
        assert t1.size > 0
        assert np.all(t1 < 5_000.0)
        assert np.all(np.diff(t1) >= 0)

    def test_sample_until_covers_an_underestimated_horizon(self):
        """The geometric-growth extension path: a tiny rate forces the
        initial chunk to undershoot the horizon repeatedly."""
        a = PoissonArrivals(rate_per_ms=0.0005, seed=9)
        times = a.sample_until(100_000.0)
        assert np.all(times < 100_000.0)
        assert np.all(np.diff(times) >= 0)

    def test_spread_clients_matches_naive_construction(self):
        sites = np.array([3, 1, 7])
        got = spread_clients(sites, 4)
        naive = [int(s) for s in sites for _ in range(4)]
        assert got == naive
        assert all(isinstance(v, int) for v in got)

    def test_spread_clients_rejects_nonpositive_counts(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            spread_clients(np.array([0, 1]), 0)
