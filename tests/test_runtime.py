"""Tests for the parallel experiment runtime.

The contract under test: ``GridRunner`` output is *identical* — to the
bit — whether points run serially, in parallel workers, or out of the
cache. Plus the cache's own invariants (stable content keys, atomic
storage, hit/miss accounting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments import fig_6_3
from repro.network.datasets import PLANETLAB_CLUSTERS
from repro.network.generators import generate_cluster_topology
from repro.placement.search import best_placement
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.threshold import MajorityKind, majority
from repro.runtime.cache import (
    ResultCache,
    content_key,
    system_fingerprint,
    topology_fingerprint,
)
from repro.runtime.grid import GridPoint, GridSpec
from repro.runtime.runner import GridRunner, in_worker, resolve_jobs


def _square(x):
    return x * x


def _fail():
    raise RuntimeError("worker exploded")


def _worker_state():
    """(am I in a pool worker?, would a nested jobs=4 runner go parallel?)"""
    return in_worker(), GridRunner(jobs=4).parallel


def _nested_map(x):
    """A task that itself runs a runner — must degrade to inline."""
    return GridRunner(jobs=4).map(_square, [{"x": x}, {"x": x + 1}])


@pytest.fixture(scope="module")
def small_topology():
    return generate_cluster_topology(
        n_sites=20, clusters=PLANETLAB_CLUSTERS, seed=7
    )


class TestContentKey:
    def test_deterministic(self):
        a = content_key(x=1, y="s", z=(1.5, None))
        b = content_key(x=1, y="s", z=(1.5, None))
        assert a == b and len(a) == 64

    def test_order_insensitive_kwargs(self):
        assert content_key(a=1, b=2) == content_key(b=2, a=1)

    def test_distinguishes_values_and_types(self):
        keys = {
            content_key(x=1),
            content_key(x=2),
            content_key(x=1.0),
            content_key(x="1"),
            content_key(x=True),
            content_key(x=None),
        }
        assert len(keys) == 6

    def test_ndarray_and_nested_containers(self):
        arr = np.arange(6, dtype=np.float64)
        a = content_key(m={"arr": arr, "k": [1, 2]})
        b = content_key(m={"k": [1, 2], "arr": arr.copy()})
        assert a == b
        assert a != content_key(m={"arr": arr + 1, "k": [1, 2]})

    def test_rejects_unstable_types(self):
        with pytest.raises(TypeError):
            content_key(x=object())

    def test_topology_fingerprint_tracks_content(self, small_topology):
        fp = topology_fingerprint(small_topology)
        assert fp == topology_fingerprint(small_topology)
        recap = small_topology.with_capacities(
            np.full(small_topology.n_nodes, 0.5)
        )
        assert fp != topology_fingerprint(recap)

    def test_system_fingerprint_structural(self):
        assert system_fingerprint(
            majority(MajorityKind.QU, 2)
        ) == system_fingerprint(majority(MajorityKind.QU, 2))
        assert system_fingerprint(GridQuorumSystem(3)) != system_fingerprint(
            GridQuorumSystem(4)
        )


class TestResultCache:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key(x=1)
        hit, _ = cache.lookup(key)
        assert not hit and cache.misses == 1
        cache.put(key, {"value": (1.5, "a")})
        hit, value = cache.lookup(key)
        assert hit and value == {"value": (1.5, "a")}
        assert cache.hits == 1 and cache.stores == 1
        assert len(cache) == 1

    @pytest.mark.parametrize(
        "garbage",
        [b"not a pickle", b"garbage\n", b"", b"\x80\x05corrupt"],
    )
    def test_corrupt_entry_is_miss(self, tmp_path, garbage):
        cache = ResultCache(tmp_path)
        key = content_key(x=1)
        cache.put(key, 42)
        cache.path_for(key).write_bytes(garbage)
        hit, _ = cache.lookup(key)
        assert not hit

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(content_key(x=i), i)
        assert cache.clear() == 3
        assert len(cache) == 0


class TestCacheEviction:
    @staticmethod
    def _backdate(cache, key, seconds_ago):
        import os

        path = cache.path_for(key)
        stamp = path.stat().st_mtime - seconds_ago
        os.utime(path, (stamp, stamp))

    def test_overfill_drops_oldest_entries(self, tmp_path):
        payload = b"x" * 1024  # ~1 KiB pickled payloads
        unbounded = ResultCache(tmp_path)
        keys = [content_key(x=i) for i in range(6)]
        for i, key in enumerate(keys):
            unbounded.put(key, payload)
            # entry i is i*10 seconds older than the newest
            self._backdate(unbounded, key, (len(keys) - i) * 10)
        total = unbounded.size_bytes()
        per_entry = total // len(keys)

        cache = ResultCache(tmp_path, max_size_bytes=3 * per_entry + 64)
        # construction already trims: the three oldest entries are gone,
        # the three newest survive
        assert len(cache) == 3
        for key in keys[:3]:
            hit, _ = cache.lookup(key)
            assert not hit
        for key in keys[3:]:
            hit, value = cache.lookup(key)
            assert hit and value == payload
        assert cache.evictions == 3
        assert cache.size_bytes() <= cache.max_size_bytes

    def test_put_triggers_trim(self, tmp_path):
        payload = b"y" * 2048
        probe = ResultCache(tmp_path)
        probe.put(content_key(probe=True), payload)
        per_entry = probe.size_bytes()
        probe.clear()

        cache = ResultCache(tmp_path, max_size_bytes=2 * per_entry + 64)
        keys = [content_key(x=i) for i in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, payload)
            self._backdate(cache, key, (len(keys) - i) * 10)
        assert cache.size_bytes() <= cache.max_size_bytes
        hit, _ = cache.lookup(keys[0])
        assert not hit  # oldest evicted
        hit, _ = cache.lookup(keys[-1])
        assert hit  # newest kept

    def test_overwrite_does_not_inflate_size_estimate(self, tmp_path):
        """Regression: put() used to add every store's size without
        subtracting the overwritten entry, inflating the estimate."""
        payload = b"x" * 2048
        cache = ResultCache(tmp_path, max_size_bytes=1 << 20)
        key = content_key(x=1)
        for _ in range(5):
            cache.put(key, payload)
        assert len(cache) == 1
        assert cache._approx_size == cache.size_bytes()

    def test_overwrites_do_not_trigger_spurious_trims(self, tmp_path):
        payload = b"y" * 1024
        probe = ResultCache(tmp_path)
        probe.put(content_key(probe=True), payload)
        per_entry = probe.size_bytes()
        probe.clear()

        cache = ResultCache(tmp_path, max_size_bytes=3 * per_entry + 64)
        cache.put(content_key(a=1), payload)
        cache.put(content_key(b=2), payload)
        for _ in range(10):  # rewriting one key must not evict anything
            cache.put(content_key(c=3), payload)
        assert cache.evictions == 0
        assert len(cache) == 3

    def test_clear_resets_size_estimate(self, tmp_path):
        """Regression: clear() used to leave _approx_size at its old
        value, forcing early trims on every store afterwards."""
        cache = ResultCache(tmp_path, max_size_bytes=1 << 20)
        for i in range(4):
            cache.put(content_key(x=i), b"z" * 512)
        assert cache._approx_size > 0
        cache.clear()
        assert cache._approx_size == 0
        cache.put(content_key(y=1), b"z" * 512)
        assert cache._approx_size == cache.size_bytes()

    def test_equal_mtime_eviction_is_path_ordered(self, tmp_path):
        """Regression: trim sorted raw (mtime, size, path) tuples, so on
        equal mtimes — routine on coarse-mtime filesystems and bulk
        writes — the *smaller* entry of a tie was evicted first, making
        survival depend on payload size. Ties must break on path only:
        the lexicographically-first path is evicted first."""
        import os

        cache = ResultCache(tmp_path)
        keys = [content_key(payload="a"), content_key(payload="b")]
        keys.sort(key=cache.path_for)
        first_key, second_key = keys
        # Give the path-wise *first* entry the *larger* payload: the old
        # size-ordered sort would evict the small second entry instead,
        # so the two behaviors disagree about the victim.
        cache.put(first_key, b"x" * 8192)
        cache.put(second_key, b"x" * 512)
        stamp = cache.path_for(first_key).stat().st_mtime
        for key in keys:
            os.utime(cache.path_for(key), (stamp, stamp))

        total = cache.size_bytes()
        removed = cache.trim(max_size_bytes=total - 1)
        assert removed == 1
        hit, _ = cache.lookup(first_key)
        assert not hit, "mtime tie must evict the earlier path"
        hit, _ = cache.lookup(second_key)
        assert hit, "mtime tie must keep the later path"

    def test_unbounded_cache_never_trims(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(content_key(x=i), b"z" * 4096)
        assert cache.trim() == 0
        assert len(cache) == 5

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_size_bytes=0)


class TestGridRunner:
    def test_serial_run_keyed_by_tag(self):
        points = [
            GridPoint(tag=f"p{i}", fn=_square, kwargs={"x": i})
            for i in range(5)
        ]
        assert GridRunner().run(points) == {
            f"p{i}": i * i for i in range(5)
        }

    def test_map_preserves_order(self):
        out = GridRunner().map(_square, [{"x": i} for i in (3, 1, 2)])
        assert out == [9, 1, 4]

    def test_duplicate_tags_rejected(self):
        points = [
            GridPoint(tag="dup", fn=_square, kwargs={"x": 1}),
            GridPoint(tag="dup", fn=_square, kwargs={"x": 2}),
        ]
        with pytest.raises(ReproError):
            GridRunner().run(points)
        with pytest.raises(ValueError):
            GridSpec(
                figure_id="f", points=tuple(points), assemble=lambda v: v
            )

    def test_parallel_matches_serial(self):
        points = [
            GridPoint(tag=i, fn=_square, kwargs={"x": i}) for i in range(8)
        ]
        assert GridRunner(jobs=2).run(points) == GridRunner().run(points)

    def test_worker_error_propagates_with_point_tag(self):
        """A failing point surfaces as ReproError naming its tag — on the
        serial path and from a pool worker alike — with the original
        exception chained as the cause."""
        with pytest.raises(ReproError, match="'boom'") as info:
            GridRunner().run([GridPoint(tag="boom", fn=_fail)])
        assert isinstance(info.value.__cause__, RuntimeError)
        with GridRunner(jobs=2) as runner:
            with pytest.raises(ReproError, match="'boom'") as info:
                runner.run(
                    [
                        GridPoint(tag="boom", fn=_fail),
                        GridPoint(tag="ok", fn=_square, kwargs={"x": 2}),
                    ]
                )
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_failed_batch_cancels_queued_points(self):
        """After a point fails, still-queued points of the batch are
        cancelled (in-flight ones finish but are discarded)."""
        points = [GridPoint(tag="boom", fn=_fail)] + [
            GridPoint(tag=i, fn=_square, kwargs={"x": i}) for i in range(32)
        ]
        with GridRunner(jobs=2) as runner:
            with pytest.raises(ReproError, match="'boom'"):
                runner.run(points)
            # the pool stays usable for the next batch
            assert runner.map(_square, [{"x": 3}]) == [9]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_results_finished_before_a_failure_reach_the_cache(
        self, tmp_path, jobs
    ):
        """Points completed before a later point fails are already
        stored, so a retry only recomputes what actually needs it."""
        cache = ResultCache(tmp_path)
        points = [
            GridPoint(
                tag=i, fn=_square, kwargs={"x": i}, cache_key={"x": i}
            )
            for i in range(4)
        ] + [GridPoint(tag="boom", fn=_fail)]
        with GridRunner(jobs=jobs, cache=cache) as runner:
            with pytest.raises(ReproError, match="'boom'"):
                runner.run(points)
        assert cache.stores == 4
        retry = ResultCache(tmp_path)
        rerun = GridRunner(cache=retry).run(points[:4])
        assert rerun == {i: i * i for i in range(4)}
        assert retry.hits == 4 and retry.stores == 0

    def test_cache_skips_work_and_stores(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = [
            GridPoint(
                tag=i, fn=_square, kwargs={"x": i}, cache_key={"x": i}
            )
            for i in range(4)
        ]
        first = GridRunner(cache=cache).run(points)
        assert cache.stores == 4 and cache.hits == 0
        second = GridRunner(cache=cache).run(points)
        assert second == first
        assert cache.hits == 4 and cache.stores == 4

    def test_uncacheable_points_always_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = [GridPoint(tag="a", fn=_square, kwargs={"x": 3})]
        for _ in range(2):
            assert GridRunner(cache=cache).run(points) == {"a": 9}
        assert cache.hits == cache.misses == cache.stores == 0

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ReproError):
            resolve_jobs(-2)


@pytest.fixture()
def counting_pool(monkeypatch):
    """Patches the runner's executor class; returns the instances list."""
    import repro.runtime.runner as runner_module

    created = []
    real_pool = runner_module.ProcessPoolExecutor

    class CountingPool(real_pool):
        def __init__(self, *args, **kwargs):
            created.append(self)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(runner_module, "ProcessPoolExecutor", CountingPool)
    return created


class TestNestingGuard:
    """Runners nest; process pools must not.

    Pool workers are branded by an initializer, and any GridRunner used
    inside one runs its batches inline — so library code can thread a
    runner through unconditionally and a whole experiment stays on one
    pool.
    """

    def test_main_process_is_not_a_worker(self):
        assert not in_worker()
        assert GridRunner(jobs=2).parallel
        assert not GridRunner(jobs=1).parallel

    def test_workers_are_marked_and_degrade_to_inline(self):
        with GridRunner(jobs=2) as runner:
            states = runner.map(_worker_state, [{} for _ in range(3)])
        assert states == [(True, False)] * 3

    def test_nested_runner_inside_worker_produces_results(self):
        with GridRunner(jobs=2) as runner:
            out = runner.map(_nested_map, [{"x": i} for i in range(4)])
        assert out == [[i * i, (i + 1) * (i + 1)] for i in range(4)]

    def test_single_pending_point_still_dispatches_to_pool(self):
        """A lone point (e.g. the only cache miss of a grid) must not run
        inline in the main process: there, nested runners would go
        parallel and compute through a different code path than jobs=1,
        under a cache key that deliberately ignores scheduling."""
        with GridRunner(jobs=2) as runner:
            states = runner.map(_worker_state, [{}])
        assert states == [(True, False)]

    def test_pool_reused_across_batches(self, counting_pool):
        with GridRunner(jobs=2) as runner:
            first = runner.map(_square, [{"x": i} for i in range(4)])
            second = runner.map(_square, [{"x": i} for i in range(4, 8)])
        assert first == [i * i for i in range(4)]
        assert second == [i * i for i in range(4, 8)]
        assert len(counting_pool) == 1

    def test_close_is_idempotent_and_serial_runner_poolless(
        self, counting_pool
    ):
        runner = GridRunner()  # jobs=1 never touches a pool
        assert runner.map(_square, [{"x": 3}]) == [9]
        runner.close()
        runner.close()
        assert counting_pool == []

    def test_fig_8_9_single_pool_and_bit_identical(
        self, planetlab, counting_pool
    ):
        """ISSUE acceptance: fig_8_9 --jobs N uses exactly one process
        pool (the inner best-placement searches run inline in its
        workers) and is bit-identical to jobs=1."""
        from repro.experiments import fig_8_9

        serial = fig_8_9.run(planetlab, fast=True, capacity_steps=2)
        assert counting_pool == []  # jobs=1 end to end: poolless

        with GridRunner(jobs=2) as runner:
            parallel = fig_8_9.run(
                planetlab, fast=True, capacity_steps=2, runner=runner
            )
        assert len(counting_pool) == 1
        assert serial == parallel  # frozen dataclasses: full deep equality


class TestParallelEquivalence:
    """ISSUE satellite: jobs=2 must be bit-identical to serial."""

    def test_fig_6_3_parallel_bit_identical(self, planetlab):
        serial = fig_6_3.run(planetlab, fast=True)
        parallel = fig_6_3.run(
            planetlab, fast=True, runner=GridRunner(jobs=2)
        )
        assert serial == parallel  # frozen dataclasses: full deep equality

    def test_fig_6_3_cached_bit_identical(self, planetlab, tmp_path):
        cache = ResultCache(tmp_path)
        first = fig_6_3.run(
            planetlab, fast=True, runner=GridRunner(cache=cache)
        )
        assert cache.stores == len(
            fig_6_3.grid_spec(planetlab, fast=True).points
        )
        second = fig_6_3.run(
            planetlab, fast=True, runner=GridRunner(cache=cache)
        )
        assert cache.hits == cache.stores
        assert first == second

    def test_best_placement_duplicate_candidates_allowed(
        self, small_topology
    ):
        """Point tags carry (position, v0), so a duplicated candidate is
        evaluated twice rather than tripping the unique-tag check."""
        system = GridQuorumSystem(3)
        dup = best_placement(small_topology, system, candidates=[3, 3, 5])
        ref = best_placement(small_topology, system, candidates=[3, 5])
        assert dup.v0 == ref.v0
        assert dup.delays_by_candidate == ref.delays_by_candidate

    def test_duplicate_candidates_parallel(self, small_topology):
        """Duplicated v0s must survive the parallel fan-out too: tags
        stay unique (position, v0) and results match serial exactly."""
        system = GridQuorumSystem(3)
        serial = best_placement(
            small_topology, system, candidates=[5, 3, 3, 5, 3]
        )
        parallel = best_placement(
            small_topology, system, candidates=[5, 3, 3, 5, 3], jobs=2
        )
        assert serial.v0 == parallel.v0
        assert serial.delays_by_candidate == parallel.delays_by_candidate

    def test_non_contiguous_candidates_parallel(self, small_topology):
        """Candidate arrays arriving as views (strided slices, reversed
        ranges) must produce the same result serial and parallel."""
        system = GridQuorumSystem(3)
        strided = np.arange(small_topology.n_nodes)[::2]
        reversed_ = np.arange(small_topology.n_nodes)[::-1]
        for candidates in (strided, reversed_):
            assert not candidates.flags.c_contiguous
            serial = best_placement(
                small_topology, system, candidates=candidates
            )
            parallel = best_placement(
                small_topology, system, candidates=candidates, jobs=2
            )
            assert serial.v0 == parallel.v0
            assert serial.avg_network_delay == parallel.avg_network_delay
            assert (
                serial.delays_by_candidate == parallel.delays_by_candidate
            )

    def test_best_placement_parallel_identical(self, small_topology):
        for system in (GridQuorumSystem(3), majority(MajorityKind.BFT, 2)):
            serial = best_placement(small_topology, system)
            parallel = best_placement(small_topology, system, jobs=2)
            assert serial.v0 == parallel.v0
            assert serial.avg_network_delay == parallel.avg_network_delay
            assert serial.delays_by_candidate == parallel.delays_by_candidate
            assert np.array_equal(
                serial.placed.placement.assignment,
                parallel.placed.placement.assignment,
            )
