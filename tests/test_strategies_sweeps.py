"""Tests for the capacity sweep and the non-uniform capacity heuristic."""

import numpy as np
import pytest

from repro.core.placement import PlacedQuorumSystem, Placement
from repro.errors import StrategyError
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.load_analysis import optimal_load
from repro.strategies.capacity_sweep import (
    capacity_levels,
    sweep_uniform_capacities,
)
from repro.strategies.nonuniform import (
    nonuniform_capacities,
    sweep_nonuniform_capacities,
)


@pytest.fixture()
def grid3_placed(line_topology):
    return PlacedQuorumSystem(
        GridQuorumSystem(3), Placement(list(range(9))), line_topology
    )


class TestCapacityLevels:
    def test_paper_grid(self):
        levels = capacity_levels(0.5, steps=10)
        assert len(levels) == 10
        assert levels[0] == pytest.approx(0.55)
        assert levels[-1] == pytest.approx(1.0)

    def test_strictly_increasing_from_lopt(self):
        levels = capacity_levels(0.2, steps=4)
        assert np.all(np.diff(levels) > 0)
        assert levels[0] > 0.2

    def test_validation(self):
        with pytest.raises(StrategyError):
            capacity_levels(0.0)
        with pytest.raises(StrategyError):
            capacity_levels(1.5)
        with pytest.raises(StrategyError):
            capacity_levels(0.5, steps=0)


class TestUniformSweep:
    def test_network_delay_nonincreasing_in_capacity(self, grid3_placed):
        sweep = sweep_uniform_capacities(grid3_placed, alpha=50.0)
        deltas = np.diff(sweep.network_delays)
        assert np.all(deltas <= 1e-6)

    def test_best_is_minimum(self, grid3_placed):
        sweep = sweep_uniform_capacities(grid3_placed, alpha=50.0)
        assert sweep.best.result.avg_response_time == pytest.approx(
            sweep.response_times.min()
        )

    def test_high_demand_prefers_low_capacity(self, grid3_placed):
        """Under extreme demand, dispersing load beats close quorums."""
        sweep = sweep_uniform_capacities(grid3_placed, alpha=500.0)
        assert sweep.best.capacity == pytest.approx(sweep.capacities.min())

    def test_zero_demand_prefers_high_capacity(self, grid3_placed):
        sweep = sweep_uniform_capacities(grid3_placed, alpha=0.0)
        best_delay = sweep.best.result.avg_response_time
        assert best_delay == pytest.approx(sweep.network_delays.min())

    def test_explicit_levels(self, grid3_placed):
        sweep = sweep_uniform_capacities(
            grid3_placed, alpha=10.0, levels=np.array([0.8, 1.0])
        )
        assert list(sweep.capacities) == [0.8, 1.0]

    def test_infeasible_levels_skipped(self, grid3_placed):
        l_opt = optimal_load(grid3_placed.system).l_opt
        sweep = sweep_uniform_capacities(
            grid3_placed,
            alpha=10.0,
            levels=np.array([l_opt * 0.5, 1.0]),
        )
        assert list(sweep.capacities) == [1.0]

    def test_infeasible_levels_recorded_not_silently_dropped(
        self, grid3_placed
    ):
        l_opt = optimal_load(grid3_placed.system).l_opt
        sweep = sweep_uniform_capacities(
            grid3_placed,
            alpha=10.0,
            levels=np.array([l_opt * 0.25, l_opt * 0.5, 1.0]),
        )
        assert sweep.infeasible_capacities == pytest.approx(
            (l_opt * 0.25, l_opt * 0.5)
        )

    def test_all_feasible_records_nothing(self, grid3_placed):
        sweep = sweep_uniform_capacities(
            grid3_placed, alpha=10.0, levels=np.array([0.8, 1.0])
        )
        assert sweep.infeasible_capacities == ()


class TestNonuniformCapacities:
    def test_range_endpoints(self, grid3_placed):
        caps = nonuniform_capacities(grid3_placed, beta=0.3, gamma=0.9)
        support = grid3_placed.placement.support_set
        mean_dist = grid3_placed.topology.mean_distances()[support]
        farthest = support[np.argmax(mean_dist)]
        closest = support[np.argmin(mean_dist)]
        assert caps[farthest] == pytest.approx(0.3)
        assert caps[closest] == pytest.approx(0.9)

    def test_monotone_in_distance(self, grid3_placed):
        caps = nonuniform_capacities(grid3_placed, beta=0.2, gamma=1.0)
        support = grid3_placed.placement.support_set
        mean_dist = grid3_placed.topology.mean_distances()[support]
        order = np.argsort(mean_dist)
        assert np.all(np.diff(caps[support][order]) <= 1e-12)

    def test_non_support_nodes_unconstrained(self, grid3_placed):
        caps = nonuniform_capacities(grid3_placed, beta=0.3, gamma=0.9)
        assert caps[9] == 1.0  # node 9 hosts nothing

    def test_invalid_interval(self, grid3_placed):
        with pytest.raises(StrategyError):
            nonuniform_capacities(grid3_placed, beta=0.9, gamma=0.3)
        with pytest.raises(StrategyError):
            nonuniform_capacities(grid3_placed, beta=-0.1, gamma=0.5)

    def test_requires_one_to_one(self, line_topology):
        placed = PlacedQuorumSystem(
            GridQuorumSystem(2), Placement([0, 0, 1, 1]), line_topology
        )
        with pytest.raises(StrategyError):
            nonuniform_capacities(placed, beta=0.3, gamma=0.9)

    def test_degenerate_equal_distances(self):
        """All support nodes equidistant: capacities collapse to gamma."""
        import numpy as np
        from repro.network.graph import Topology

        # Equilateral-ish: 3 nodes pairwise 10 ms apart + one client hub.
        m = np.full((4, 4), 10.0)
        np.fill_diagonal(m, 0.0)
        topo = Topology(m, metric_closure=False)
        placed = PlacedQuorumSystem(
            ThresholdOrGrid := GridQuorumSystem(1), Placement([1]), topo
        )
        caps = nonuniform_capacities(placed, beta=0.3, gamma=0.8)
        assert caps[1] == pytest.approx(0.8)


class TestNonuniformSweep:
    def test_points_and_best(self, grid3_placed):
        sweep = sweep_nonuniform_capacities(grid3_placed, alpha=50.0)
        assert len(sweep.points) >= 1
        assert len(sweep.points) + len(sweep.infeasible_gammas) == 10
        assert sweep.best.result.avg_response_time == pytest.approx(
            min(p.result.avg_response_time for p in sweep.points)
        )

    def test_capacities_within_interval(self, grid3_placed):
        l_opt = optimal_load(grid3_placed.system).l_opt
        sweep = sweep_nonuniform_capacities(grid3_placed, alpha=50.0)
        support = grid3_placed.placement.support_set
        for point in sweep.points:
            caps = point.capacities[support]
            assert np.all(caps >= l_opt - 1e-9)
            assert np.all(caps <= point.gamma + 1e-9)

    def test_nonuniform_no_worse_than_uniform_on_average(
        self, grid3_placed
    ):
        """Across the sweep the heuristic should not lose to uniform
        capacities (paper Figure 7.7)."""
        alpha = 112.0
        uniform = sweep_uniform_capacities(grid3_placed, alpha=alpha)
        nonuni = sweep_nonuniform_capacities(grid3_placed, alpha=alpha)
        assert (
            nonuni.response_times.mean()
            <= uniform.response_times.mean() + 1e-6
        )
