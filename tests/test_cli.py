"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_system
from repro.errors import ReproError
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.threshold import ThresholdQuorumSystem


class TestParseSystem:
    def test_grid(self):
        system = parse_system("grid:4")
        assert isinstance(system, GridQuorumSystem)
        assert system.k == 4

    def test_majority_kinds(self):
        assert parse_system("majority:simple:2").universe_size == 5
        assert parse_system("majority:bft:2").universe_size == 7
        assert parse_system("majority:qu:2").universe_size == 11

    def test_case_insensitive(self):
        assert isinstance(parse_system("GRID:3"), GridQuorumSystem)
        assert isinstance(
            parse_system("Majority:QU:1"), ThresholdQuorumSystem
        )

    def test_bad_specs(self):
        for spec in ("grid", "grid:2:3", "majority:nope:1", "ring:5"):
            with pytest.raises(ReproError):
                parse_system(spec)


class TestCommands:
    def test_topologies(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "planetlab-50" in out
        assert "daxlist-161" in out

    def test_systems(self, capsys):
        assert main(["systems", "--max-universe", "16"]) == 0
        out = capsys.readouterr().out
        assert "grid:4" in out
        assert "majority:simple:1" in out
        assert "majority:qu:3" in out
        assert "majority:qu:4" not in out  # universe 21 > 16

    def test_plan_grid_lp(self, capsys):
        code = main(
            ["plan", "--system", "grid:3", "--demand", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Grid 3x3" in out
        assert "response time" in out
        assert "crash tolerance" in out
        assert "LP-tuned" in out

    def test_plan_closest_strategy(self, capsys):
        code = main(
            ["plan", "--system", "grid:2", "--strategy", "closest"]
        )
        assert code == 0
        assert "closest" in capsys.readouterr().out

    def test_plan_majority_falls_back_from_lp(self, capsys):
        code = main(["plan", "--system", "majority:simple:2"])
        assert code == 0
        assert "LP unavailable" in capsys.readouterr().out

    def test_plan_many_to_one(self, capsys):
        code = main(
            ["plan", "--system", "grid:3", "--many-to-one", "2.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "many-to-one" in out

    def test_plan_bad_system_spec_errors(self, capsys):
        code = main(["plan", "--system", "ring:7"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_dynamics_replay(self, capsys):
        code = main(
            [
                "dynamics", "--system", "grid:2", "--epochs", "4",
                "--scenario", "diurnal", "--candidates", "5",
                "--policies", "static,threshold:0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dynamics replay: 4 epochs" in out
        assert "clairvoyant" in out
        assert "mean regret" in out

    def test_dynamics_bad_policy_errors(self, capsys):
        code = main(
            ["dynamics", "--epochs", "4", "--policies", "sometimes"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_dynamics_negative_candidates_errors(self, capsys):
        code = main(["dynamics", "--epochs", "4", "--candidates", "-3"])
        assert code == 1
        assert "candidates" in capsys.readouterr().err

    def test_dynamics_closed_loop(self, capsys):
        code = main(
            [
                "dynamics", "--system", "grid:2", "--epochs", "4",
                "--scenario", "diurnal", "--candidates", "5",
                "--policies", "static,threshold:0.1", "--closed-loop",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "closed_loop: True" in out
        assert "telemetry_noise: 0.05" in out
        assert "mean est err" in out

    def test_dynamics_tune_thresholds(self, capsys):
        code = main(
            [
                "dynamics", "--system", "grid:2", "--epochs", "4",
                "--scenario", "diurnal", "--candidates", "5",
                "--closed-loop", "--tune-thresholds", "0.05,0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "threshold auto-tune: 2 candidate(s)" in out
        assert "best: threshold:" in out

    def test_dynamics_noise_requires_closed_loop(self, capsys):
        code = main(["dynamics", "--epochs", "4", "--noise", "0.1"])
        assert code == 1
        assert "--closed-loop" in capsys.readouterr().err

    def test_dynamics_tune_requires_closed_loop(self, capsys):
        code = main(
            ["dynamics", "--epochs", "4", "--tune-thresholds", "0.1"]
        )
        assert code == 1
        assert "--closed-loop" in capsys.readouterr().err

    def test_dynamics_bad_tune_list_errors(self, capsys):
        code = main(
            [
                "dynamics", "--epochs", "4", "--closed-loop",
                "--tune-thresholds", "0.1,zap",
            ]
        )
        assert code == 1
        assert "comma-separated numbers" in capsys.readouterr().err
