"""Tests for LP (4.3)-(4.6) and the simple strategy factories."""

import numpy as np
import pytest

from repro.core.placement import PlacedQuorumSystem, Placement
from repro.core.response_time import evaluate
from repro.core.strategy import (
    ExplicitStrategy,
    ThresholdBalancedStrategy,
    ThresholdClosestStrategy,
)
from repro.errors import InfeasibleError, StrategyError
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.load_analysis import optimal_load
from repro.quorums.threshold import ThresholdQuorumSystem
from repro.strategies.lp_optimizer import optimize_access_strategies
from repro.strategies.simple import balanced_strategy, closest_strategy


@pytest.fixture()
def grid3_placed(line_topology):
    return PlacedQuorumSystem(
        GridQuorumSystem(3), Placement(list(range(9))), line_topology
    )


class TestSimpleFactories:
    def test_closest_dispatch_threshold(self, line_topology):
        placed = PlacedQuorumSystem(
            ThresholdQuorumSystem(3, 2), Placement([0, 1, 2]), line_topology
        )
        assert isinstance(closest_strategy(placed), ThresholdClosestStrategy)
        assert isinstance(
            balanced_strategy(placed), ThresholdBalancedStrategy
        )

    def test_closest_dispatch_grid(self, grid3_placed):
        assert isinstance(closest_strategy(grid3_placed), ExplicitStrategy)
        assert isinstance(balanced_strategy(grid3_placed), ExplicitStrategy)

    def test_many_to_one_threshold_uses_explicit(self, line_topology):
        placed = PlacedQuorumSystem(
            ThresholdQuorumSystem(3, 2), Placement([0, 0, 1]), line_topology
        )
        assert isinstance(closest_strategy(placed), ExplicitStrategy)

    def test_closest_never_worse_than_balanced(self, grid3_placed):
        c = evaluate(grid3_placed, closest_strategy(grid3_placed))
        b = evaluate(grid3_placed, balanced_strategy(grid3_placed))
        assert c.avg_network_delay <= b.avg_network_delay + 1e-9


class TestStrategyLP:
    def test_unconstrained_recovers_closest(self, grid3_placed):
        """With capacity 1 everywhere the LP matches the closest strategy's
        network delay (closest is optimal when capacity never binds)."""
        lp = optimize_access_strategies(grid3_placed, 1.0)
        lp_delay = evaluate(grid3_placed, lp).avg_network_delay
        closest_delay = evaluate(
            grid3_placed, closest_strategy(grid3_placed)
        ).avg_network_delay
        assert lp_delay == pytest.approx(closest_delay, abs=1e-6)

    def test_capacity_constraints_hold(self, grid3_placed):
        cap = 0.7
        lp = optimize_access_strategies(grid3_placed, cap)
        loads = lp.node_loads(grid3_placed)
        assert np.all(loads <= cap + 1e-6)

    def test_tighter_capacity_higher_delay(self, grid3_placed):
        l_opt = optimal_load(grid3_placed.system).l_opt
        delays = []
        for cap in (l_opt + 0.01, 0.7, 1.0):
            strat = optimize_access_strategies(grid3_placed, cap)
            delays.append(
                evaluate(grid3_placed, strat).avg_network_delay
            )
        assert delays[0] >= delays[1] >= delays[2]

    def test_infeasible_below_optimal_load(self, grid3_placed):
        l_opt = optimal_load(grid3_placed.system).l_opt
        with pytest.raises(InfeasibleError):
            optimize_access_strategies(grid3_placed, l_opt * 0.5)

    def test_feasible_exactly_at_optimal_load(self, grid3_placed):
        l_opt = optimal_load(grid3_placed.system).l_opt
        strat = optimize_access_strategies(grid3_placed, l_opt + 1e-9)
        loads = strat.node_loads(grid3_placed)
        assert np.all(loads <= l_opt + 1e-6)

    def test_per_node_capacities(self, grid3_placed):
        caps = np.ones(10)
        caps[0] = 0.05  # starve the node hosting element 0
        strat = optimize_access_strategies(grid3_placed, caps)
        loads = strat.node_loads(grid3_placed)
        assert loads[0] <= 0.05 + 1e-6

    def test_shape_validation(self, grid3_placed):
        with pytest.raises(StrategyError):
            optimize_access_strategies(grid3_placed, np.ones(3))
        with pytest.raises(StrategyError):
            optimize_access_strategies(grid3_placed, -0.5)

    def test_non_enumerable_rejected(self, line_topology):
        placed = PlacedQuorumSystem(
            ThresholdQuorumSystem(49, 25),
            Placement(np.arange(49) % 10),
            line_topology,
        )
        with pytest.raises(StrategyError):
            optimize_access_strategies(placed, 1.0)

    def test_lp_beats_balanced_at_same_load_bound(self, grid3_placed):
        """The LP's whole point: minimum delay subject to per-node load
        no worse than the balanced strategy's."""
        balanced = balanced_strategy(grid3_placed)
        bal_loads = balanced.node_loads(grid3_placed)
        strat = optimize_access_strategies(grid3_placed, bal_loads)
        lp_delay = evaluate(grid3_placed, strat).avg_network_delay
        bal_delay = evaluate(grid3_placed, balanced).avg_network_delay
        assert lp_delay <= bal_delay + 1e-6
