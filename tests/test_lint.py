"""Tests for the repro-lint static-analysis framework.

Every rule RL001–RL007 gets a true-positive fixture, a true-negative
fixture, and a same-line suppression fixture. The reporters, baseline
round-trip, CLI exit-code contract, and the repo-wide self-check (the
committed tree must lint clean against the committed baseline) are
pinned here too.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    all_rules,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import LintError

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(findings) -> list[str]:
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_all_seven_rules_registered():
    assert sorted(all_rules()) == [
        "RL001",
        "RL002",
        "RL003",
        "RL004",
        "RL005",
        "RL006",
        "RL007",
    ]


# ----------------------------------------------------------------------
# RL001 — unseeded / ambient randomness
# ----------------------------------------------------------------------
def test_rl001_flags_unseeded_default_rng():
    findings = lint_source("rng = np.random.default_rng()\n")
    assert codes(findings) == ["RL001"]
    assert "without a seed" in findings[0].message


def test_rl001_flags_ambient_np_random_and_stdlib_random():
    src = (
        "import random\n"
        "x = np.random.rand(3)\n"
        "y = random.random()\n"
    )
    assert codes(lint_source(src)) == ["RL001", "RL001"]


def test_rl001_clean_on_seeded_streams():
    src = (
        "rng = np.random.default_rng(42)\n"
        "gen = np.random.default_rng(seed)\n"
        "x = rng.random(3)\n"
    )
    assert lint_source(src) == []


def test_rl001_suppression_same_line_only():
    suppressed = (
        "rng = np.random.default_rng()"
        "  # repro-lint: disable=RL001 -- fixture\n"
    )
    assert lint_source(suppressed) == []
    # A pragma on a *different* line silences nothing.
    elsewhere = (
        "# repro-lint: disable=RL001\n"
        "rng = np.random.default_rng()\n"
    )
    assert codes(lint_source(elsewhere)) == ["RL001"]


def test_rl001_pragma_inside_string_does_not_suppress():
    src = (
        's = "# repro-lint: disable=RL001"; '
        "rng = np.random.default_rng()\n"
    )
    assert codes(lint_source(src)) == ["RL001"]


def test_seeded_vs_unseeded_rng_divergence():
    """The behavior RL001 exists to prevent, demonstrated on real streams."""
    a = np.random.default_rng(7).random(8)
    b = np.random.default_rng(7).random(8)
    assert np.array_equal(a, b), "same seed must give bit-identical streams"
    c = np.random.default_rng().random(8)  # repro-lint: disable=RL001 -- demonstrating the failure mode this rule bans
    d = np.random.default_rng().random(8)  # repro-lint: disable=RL001 -- demonstrating the failure mode this rule bans
    assert not np.array_equal(c, d), "entropy-seeded streams diverge"


# ----------------------------------------------------------------------
# RL002 — wall clock and environment reads
# ----------------------------------------------------------------------
def test_rl002_flags_clock_and_env_reads():
    src = (
        "t0 = time.perf_counter()\n"
        "now = datetime.now()\n"
        "flag = os.environ.get('X')\n"
        "other = os.getenv('Y')\n"
    )
    assert codes(lint_source(src)) == ["RL002"] * 4


def test_rl002_flags_from_time_import():
    findings = lint_source("from time import perf_counter\n")
    assert codes(findings) == ["RL002"]


def test_rl002_clean_on_benign_time_use():
    src = "dt = time.sleep\nstamp = duration_ms / 1000.0\n"
    assert lint_source(src) == []


def test_rl002_allowlisted_under_benchmarks():
    src = "t0 = time.perf_counter()\n"
    assert lint_source(src, path="benchmarks/bench_x.py") == []
    assert codes(lint_source(src, path="repro/core/x.py")) == ["RL002"]


def test_rl002_suppression():
    src = (
        "flag = os.environ.get('X')"
        "  # repro-lint: disable=RL002 -- config read\n"
    )
    assert lint_source(src) == []


def test_rl002_obs_clock_is_the_only_allowlisted_obs_module():
    """The tracing clock module may read wall time; the rest of the
    observability package stays enforced — timings cannot leak in
    anywhere but repro/obs/clock.py."""
    src = "t0 = time.perf_counter_ns()\n"
    assert lint_source(src, path="src/repro/obs/clock.py") == []
    assert codes(
        lint_source(src, path="src/repro/obs/tracer.py")
    ) == ["RL002"]
    assert codes(
        lint_source(src, path="src/repro/obs/summarize.py")
    ) == ["RL002"]


# ----------------------------------------------------------------------
# RL003 — fingerprint completeness
# ----------------------------------------------------------------------
_RL003_INCOMPLETE = """
@dataclass(frozen=True)
class Config:
    alpha: float = 1.0
    beta: int = 2

    def fingerprint_components(self):
        return {"alpha": self.alpha}
"""

_RL003_COMPLETE = """
@dataclass(frozen=True)
class Config:
    alpha: float = 1.0
    beta: int = 2

    def fingerprint_components(self):
        return {"alpha": self.alpha, "beta": self.beta}
"""

_RL003_EXCLUDED = """
@dataclass(frozen=True)
class Config:
    alpha: float = 1.0
    label: str = ""

    _FINGERPRINT_EXCLUDE = ("label",)

    def fingerprint_components(self):
        return {"alpha": self.alpha}
"""


def test_rl003_flags_missing_field():
    findings = lint_source(_RL003_INCOMPLETE)
    assert codes(findings) == ["RL003"]
    assert "beta" in findings[0].message


def test_rl003_clean_when_every_field_hashed():
    assert lint_source(_RL003_COMPLETE) == []


def test_rl003_exclude_list_is_honored():
    assert lint_source(_RL003_EXCLUDED) == []


def test_rl003_flags_stale_exclude_entry():
    src = _RL003_EXCLUDED.replace('("label",)', '("label", "gone")')
    findings = lint_source(src)
    assert codes(findings) == ["RL003"]
    assert "gone" in findings[0].message


def test_rl003_asdict_covers_everything():
    src = (
        "@dataclass(frozen=True)\n"
        "class Config:\n"
        "    alpha: float = 1.0\n"
        "    beta: int = 2\n"
        "\n"
        "    def fingerprint_components(self):\n"
        "        return asdict(self)\n"
    )
    assert lint_source(src) == []


def test_rl003_suppression():
    src = _RL003_INCOMPLETE.replace(
        "def fingerprint_components(self):",
        "def fingerprint_components(self):"
        "  # repro-lint: disable=RL003 -- fixture",
    )
    assert lint_source(src) == []


# ----------------------------------------------------------------------
# RL004 — cache-key-input marker
# ----------------------------------------------------------------------
def test_rl004_flags_unmarked_cache_key_import():
    src = "from repro.runtime.cache import content_key\n"
    findings = lint_source(src, path="repro/experiments/fig_x.py")
    assert codes(findings) == ["RL004"]
    assert "cache-key-input" in findings[0].message


def test_rl004_clean_with_marker():
    src = "from repro.runtime.cache import content_key  # cache-key-input\n"
    assert lint_source(src, path="repro/experiments/fig_x.py") == []


def test_rl004_result_cache_alone_is_not_a_key_input():
    src = "from repro.runtime.cache import ResultCache\n"
    assert lint_source(src, path="repro/experiments/fig_x.py") == []


def test_rl004_upstream_modules_require_marker():
    findings = lint_source("x = 1\n", path="repro/network/graph.py")
    assert codes(findings) == ["RL004"]
    assert "upstream" in findings[0].message
    marked = "# cache-key-input: rtt feeds topology_fingerprint\nx = 1\n"
    assert lint_source(marked, path="repro/network/graph.py") == []


def test_rl004_allowlisted_under_tests():
    src = "from repro.runtime.cache import content_key\n"
    assert lint_source(src, path="tests/test_x.py") == []


# ----------------------------------------------------------------------
# RL005 — swallowed exceptions
# ----------------------------------------------------------------------
def test_rl005_flags_broad_except_without_reraise():
    src = (
        "try:\n"
        "    work()\n"
        "except Exception:\n"
        "    pass\n"
    )
    findings = lint_source(src)
    assert codes(findings) == ["RL005"]
    assert findings[0].line == 3


def test_rl005_flags_bare_except():
    src = "try:\n    work()\nexcept:\n    log()\n"
    assert codes(lint_source(src)) == ["RL005"]


def test_rl005_clean_when_reraised():
    src = (
        "try:\n"
        "    work()\n"
        "except Exception as exc:\n"
        "    raise SimulationError('boom') from exc\n"
    )
    assert lint_source(src) == []


def test_rl005_clean_on_narrow_except():
    src = "try:\n    work()\nexcept KeyError:\n    pass\n"
    assert lint_source(src) == []


def test_rl005_suppression():
    src = (
        "try:\n"
        "    work()\n"
        "except Exception:  # repro-lint: disable=RL005 -- best-effort\n"
        "    pass\n"
    )
    assert lint_source(src) == []


# ----------------------------------------------------------------------
# RL006 — float equality
# ----------------------------------------------------------------------
def test_rl006_flags_float_equality():
    assert codes(lint_source("ok = x == 1.5\n")) == ["RL006"]
    assert codes(lint_source("ok = a / b == c\n")) == ["RL006"]
    assert codes(lint_source("ok = float(x) != y\n")) == ["RL006"]


def test_rl006_clean_on_int_equality_and_ordering():
    assert lint_source("ok = n == 3\n") == []
    assert lint_source("ok = x <= 1.5\n") == []


def test_rl006_allowlisted_under_tests():
    src = "assert x == 1.5\n"
    assert lint_source(src, path="tests/test_x.py") == []
    assert codes(lint_source(src, path="repro/core/x.py")) == ["RL006"]


def test_rl006_suppression():
    src = "skip = p == 0.0  # repro-lint: disable=RL006 -- exact sentinel\n"
    assert lint_source(src) == []


# ----------------------------------------------------------------------
# RL007 — writes into shared topology views
# ----------------------------------------------------------------------
def test_rl007_flags_write_into_adopted_view():
    src = (
        "def worker(handle):\n"
        "    topo = resolve_topology(handle)\n"
        "    topo.rtt[0, 0] = 1.0\n"
    )
    findings = lint_source(src)
    assert codes(findings) == ["RL007"]
    assert "topo" in findings[0].message


def test_rl007_flags_setflags_on_adopted_view():
    src = (
        "topo = Topology.adopt(rtt, names, caps)\n"
        "topo.rtt.setflags(write=True)\n"
    )
    findings = lint_source(src)
    assert codes(findings) == ["RL007"]
    assert "setflags" in findings[0].message


def test_rl007_clean_on_private_copy():
    src = (
        "def worker(handle):\n"
        "    topo = resolve_topology(handle)\n"
        "    local = np.array(topo.rtt)\n"
        "    local[0, 0] = 1.0\n"
    )
    assert lint_source(src) == []


def test_rl007_does_not_cross_scopes():
    # `topo` in the outer scope must not taint an unrelated inner `topo`.
    src = (
        "topo = resolve_topology(handle)\n"
        "def helper(topo):\n"
        "    topo[0] = 1\n"
    )
    assert lint_source(src) == []


def test_rl007_suppression():
    src = (
        "topo = resolve_topology(handle)\n"
        "topo.rtt[0, 0] = 1.0  # repro-lint: disable=RL007 -- fixture\n"
    )
    assert lint_source(src) == []


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------
def test_syntax_error_reports_rl000():
    findings = lint_source("def broken(:\n")
    assert codes(findings) == ["RL000"]
    assert "does not parse" in findings[0].message


def test_multi_rule_suppression_comment():
    src = (
        "t0 = time.perf_counter(); rng = np.random.default_rng()"
        "  # repro-lint: disable=RL001,RL002 -- fixture\n"
    )
    assert lint_source(src) == []


def test_rule_subset_config():
    src = "t0 = time.perf_counter()\nrng = np.random.default_rng()\n"
    only_rng = lint_source(src, config=LintConfig(rules=("RL001",)))
    assert codes(only_rng) == ["RL001"]


def test_unknown_rule_code_raises():
    with pytest.raises(LintError, match="RL999"):
        lint_source("x = 1\n", config=LintConfig(rules=("RL999",)))


def test_lint_paths_rejects_missing_path(tmp_path):
    with pytest.raises(LintError, match="no such file"):
        lint_paths([tmp_path / "nope"])


def test_findings_sorted_by_location():
    src = (
        "flag = os.environ.get('X')\n"
        "rng = np.random.default_rng()\n"
    )
    findings = lint_source(src)
    assert [(f.line, f.rule) for f in findings] == [
        (1, "RL002"),
        (2, "RL001"),
    ]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    findings = lint_source(
        "rng = np.random.default_rng()\nflag = os.environ.get('X')\n",
        path="repro/core/x.py",
    )
    baseline = Baseline.from_findings(findings)
    target = tmp_path / "baseline.json"
    write_baseline(target, baseline)
    assert load_baseline(target) == baseline
    # Written form is the documented schema, sorted and newline-terminated.
    payload = json.loads(target.read_text())
    assert payload["version"] == 1
    assert [e["rule"] for e in payload["entries"]] == ["RL001", "RL002"]
    assert target.read_text().endswith("\n")


def test_baseline_absorbs_exactly_its_budget():
    src = "a = np.random.default_rng()\na = np.random.default_rng()\n"
    two = lint_source(src, path="repro/core/x.py")
    baseline = Baseline.from_findings(two[:1])  # budget of 1 for the shape
    fresh, absorbed = baseline.filter_new(two)
    assert absorbed == 1
    assert codes(fresh) == ["RL001"]


def test_baseline_keys_on_snippet_not_line_number():
    before = lint_source(
        "rng = np.random.default_rng()\n", path="repro/core/x.py"
    )
    baseline = Baseline.from_findings(before)
    # Same offending line, now pushed down by an unrelated edit above it.
    after = lint_source(
        "x = 1\n\nrng = np.random.default_rng()\n", path="repro/core/x.py"
    )
    fresh, absorbed = baseline.filter_new(after)
    assert fresh == [] and absorbed == 1


def test_malformed_baseline_raises(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"version": 99, "entries": []}')
    with pytest.raises(LintError, match="unrecognized format"):
        load_baseline(bad)
    bad.write_text('{"version": 1, "entries": [{"path": "x"}]}')
    with pytest.raises(LintError, match="malformed entry"):
        load_baseline(bad)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def test_json_report_schema():
    findings = lint_source(
        "rng = np.random.default_rng()\n", path="repro/core/x.py"
    )
    payload = json.loads(render_json(findings, baselined=3))
    assert set(payload) == {"version", "counts", "findings"}
    assert payload["version"] == 1
    assert payload["counts"] == {
        "findings": 1,
        "baselined": 3,
        "by_rule": {"RL001": 1},
    }
    (entry,) = payload["findings"]
    assert set(entry) == {"rule", "path", "line", "col", "message", "snippet"}
    assert entry["rule"] == "RL001"
    assert entry["snippet"] == "rng = np.random.default_rng()"


def test_text_report_clean_and_dirty():
    assert render_text([]) == "clean\n"
    assert render_text([], baselined=2) == "clean (2 baselined finding(s))\n"
    findings = lint_source("rng = np.random.default_rng()\n")
    text = render_text(findings)
    assert "RL001" in text and "1 finding(s)" in text


# ----------------------------------------------------------------------
# CLI exit-code contract
# ----------------------------------------------------------------------
def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("rng = np.random.default_rng()\n")

    assert lint_main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out

    assert lint_main([str(dirty)]) == 1
    assert "RL001" in capsys.readouterr().out

    assert lint_main([str(tmp_path / "missing.py")]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_write_baseline_then_clean(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    dirty = tmp_path / "dirty.py"
    dirty.write_text("rng = np.random.default_rng()\n")

    assert lint_main([str(dirty)]) == 1
    capsys.readouterr()
    assert lint_main([str(dirty), "--write-baseline"]) == 0
    capsys.readouterr()
    # The default baseline in cwd now absorbs the finding...
    assert lint_main([str(dirty)]) == 0
    assert "baselined" in capsys.readouterr().out
    # ...unless explicitly ignored.
    assert lint_main([str(dirty), "--no-baseline"]) == 1
    capsys.readouterr()
    # A *new* finding still fails even with the baseline present.
    dirty.write_text(
        "rng = np.random.default_rng()\nflag = os.environ.get('X')\n"
    )
    assert lint_main([str(dirty)]) == 1
    assert "RL002" in capsys.readouterr().out


def test_cli_json_output_artifact(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("rng = np.random.default_rng()\n")
    artifact = tmp_path / "report.json"
    code = lint_main(
        [str(dirty), "--format", "json", "--json-output", str(artifact)]
    )
    assert code == 1
    stdout_payload = json.loads(capsys.readouterr().out)
    file_payload = json.loads(artifact.read_text())
    assert stdout_payload == file_payload
    assert file_payload["counts"]["findings"] == 1


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL004", "RL007"):
        assert code in out


# ----------------------------------------------------------------------
# Repo self-check
# ----------------------------------------------------------------------
def test_repository_lints_clean_against_committed_baseline(monkeypatch):
    """The committed tree must pass its own linter.

    Mirrors CI's ``python -m repro.lint src tests benchmarks``: any
    finding not absorbed by the committed baseline fails this test, so
    a PR cannot introduce a violation without either fixing it,
    suppressing it with a reason, or visibly growing the baseline.
    """
    monkeypatch.chdir(REPO_ROOT)
    findings = lint_paths(["src", "tests", "benchmarks", "scripts"])
    baseline_file = REPO_ROOT / "lint-baseline.json"
    if baseline_file.is_file():
        findings, _ = load_baseline(baseline_file).filter_new(findings)
    assert findings == [], "\n" + render_text(findings)
