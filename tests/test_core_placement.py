"""Tests for Placement and PlacedQuorumSystem."""

import numpy as np
import pytest

from repro.core.placement import PlacedQuorumSystem, Placement
from repro.errors import PlacementError
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.threshold import ThresholdQuorumSystem


class TestPlacement:
    def test_basic(self):
        p = Placement([3, 1, 4])
        assert p.universe_size == 3
        assert p.node_of(0) == 3
        assert list(p.support_set) == [1, 3, 4]
        assert p.is_one_to_one

    def test_many_to_one(self):
        p = Placement([2, 2, 5])
        assert not p.is_one_to_one
        assert list(p.support_set) == [2, 5]
        assert list(p.elements_on(2)) == [0, 1]

    def test_multiplicities(self):
        p = Placement([2, 2, 5])
        assert list(p.multiplicities(7)) == [0, 0, 2, 0, 0, 1, 0]

    def test_equality_and_hash(self):
        assert Placement([1, 2]) == Placement([1, 2])
        assert Placement([1, 2]) != Placement([2, 1])
        assert hash(Placement([1, 2])) == hash(Placement([1, 2]))

    def test_negative_node_rejected(self):
        with pytest.raises(PlacementError):
            Placement([0, -1])

    def test_empty_rejected(self):
        with pytest.raises(PlacementError):
            Placement([])

    def test_assignment_read_only(self):
        p = Placement([1, 2])
        with pytest.raises(ValueError):
            p.assignment[0] = 9

    def test_validate_for_universe_mismatch(self, line_topology):
        grid = GridQuorumSystem(2)
        with pytest.raises(PlacementError):
            Placement([0, 1, 2]).validate_for(grid, line_topology)

    def test_validate_for_node_out_of_range(self, line_topology):
        grid = GridQuorumSystem(2)
        with pytest.raises(PlacementError):
            Placement([0, 1, 2, 99]).validate_for(grid, line_topology)


class TestPlacedQuorumSystem:
    def test_placed_quorums_dedupe_nodes(self, line_topology):
        grid = GridQuorumSystem(2)
        placed = PlacedQuorumSystem(
            grid, Placement([0, 0, 1, 2]), line_topology
        )
        # Quorum (0,0) = {e0, e1, e2}; nodes {0, 0, 1} dedupe to {0, 1}.
        assert set(placed.placed_quorums[0]) == {0, 1}

    def test_delay_matrix_values(self, line_topology):
        grid = GridQuorumSystem(2)
        placed = PlacedQuorumSystem(
            grid, Placement([0, 1, 2, 3]), line_topology
        )
        # Quorum (0,0) = elements {0,1,2} -> nodes {0,1,2}; from client 9
        # the farthest is node 0 at 90 ms.
        i = 0
        assert placed.delay_matrix[9, i] == pytest.approx(90.0)
        # From client 0 the farthest of nodes {0,1,2} is node 2 at 20 ms.
        assert placed.delay_matrix[0, i] == pytest.approx(20.0)

    def test_quorum_delay_matches_matrix(self, line_topology):
        grid = GridQuorumSystem(3)
        placed = PlacedQuorumSystem(
            grid, Placement(list(range(9))), line_topology
        )
        for v in (0, 4, 9):
            for i in (0, 4, 8):
                assert placed.quorum_delay(v, i) == pytest.approx(
                    placed.delay_matrix[v, i]
                )

    def test_incidence_counts_multiplicity(self, line_topology):
        grid = GridQuorumSystem(2)
        placed = PlacedQuorumSystem(
            grid, Placement([5, 5, 5, 6]), line_topology
        )
        # Quorum (0,0) = {e0,e1,e2}, all on node 5 -> count 3.
        assert placed.incidence_counts[0, 5] == 3.0
        assert placed.incidence_indicator[0, 5] == 1.0

    def test_augmented_delay_adds_node_costs(self, line_topology):
        grid = GridQuorumSystem(2)
        placed = PlacedQuorumSystem(
            grid, Placement([0, 1, 2, 3]), line_topology
        )
        costs = np.zeros(10)
        costs[0] = 1000.0
        rho = placed.augmented_delay_matrix(costs)
        # Every quorum containing element 0 (node 0) now costs > 1000.
        assert rho[0, 0] >= 1000.0

    def test_augmented_delay_shape_check(self, line_topology):
        grid = GridQuorumSystem(2)
        placed = PlacedQuorumSystem(
            grid, Placement([0, 1, 2, 3]), line_topology
        )
        with pytest.raises(PlacementError):
            placed.augmented_delay_matrix(np.zeros(3))

    def test_is_threshold_flag(self, line_topology):
        maj = ThresholdQuorumSystem(3, 2)
        placed = PlacedQuorumSystem(
            maj, Placement([0, 1, 2]), line_topology
        )
        assert placed.is_threshold
        grid_placed = PlacedQuorumSystem(
            GridQuorumSystem(2), Placement([0, 1, 2, 3]), line_topology
        )
        assert not grid_placed.is_threshold

    def test_support_distances(self, line_topology):
        maj = ThresholdQuorumSystem(3, 2)
        placed = PlacedQuorumSystem(
            maj, Placement([2, 4, 6]), line_topology
        )
        d = placed.support_distances
        assert d.shape == (10, 3)
        assert d[0, 0] == pytest.approx(20.0)
        assert d[0, 2] == pytest.approx(60.0)
