"""Tests for candidate-quorum subsystems (LP over large Majorities)."""

import numpy as np
import pytest

from repro.core.placement import PlacedQuorumSystem, Placement
from repro.core.response_time import evaluate
from repro.core.strategy import (
    ThresholdBalancedStrategy,
    ThresholdClosestStrategy,
)
from repro.errors import StrategyError
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.threshold import ThresholdQuorumSystem
from repro.strategies.candidates import candidate_subsystem
from repro.strategies.lp_optimizer import optimize_access_strategies
from repro.strategies.simple import closest_strategy


@pytest.fixture()
def maj_placed(planetlab):
    system = ThresholdQuorumSystem(21, 17)  # not enumerable: C(21,17) big
    return PlacedQuorumSystem(
        system, Placement(np.arange(21)), planetlab
    )


class TestConstruction:
    def test_candidates_are_q_subsets(self, maj_placed):
        sub = candidate_subsystem(maj_placed, random_extra=8)
        q = maj_placed.system.quorum_size
        for quorum in sub.system.quorums:
            assert len(quorum) == q

    def test_valid_quorum_system(self, maj_placed):
        sub = candidate_subsystem(maj_placed, random_extra=4)
        sub.system.validate()  # pairwise intersection inherited

    def test_contains_every_closest_quorum(self, maj_placed):
        sub = candidate_subsystem(maj_placed, random_extra=0)
        q = maj_placed.system.quorum_size
        dist = maj_placed.support_distances
        quorums = set(sub.system.quorums)
        for v in range(maj_placed.n_nodes):
            closest = frozenset(
                np.argsort(dist[v], kind="stable")[:q].tolist()
            )
            assert closest in quorums

    def test_same_placement_and_topology(self, maj_placed):
        sub = candidate_subsystem(maj_placed)
        assert sub.placement is maj_placed.placement
        assert sub.topology is maj_placed.topology

    def test_deterministic(self, maj_placed):
        a = candidate_subsystem(maj_placed, random_extra=16, seed=3)
        b = candidate_subsystem(maj_placed, random_extra=16, seed=3)
        assert a.system.quorums == b.system.quorums

    def test_rejects_non_threshold(self, planetlab):
        placed = PlacedQuorumSystem(
            GridQuorumSystem(3), Placement(np.arange(9)), planetlab
        )
        with pytest.raises(StrategyError):
            candidate_subsystem(placed)

    def test_rejects_many_to_one(self, planetlab):
        system = ThresholdQuorumSystem(5, 3)
        placed = PlacedQuorumSystem(
            system, Placement([0, 0, 1, 2, 3]), planetlab
        )
        with pytest.raises(StrategyError):
            candidate_subsystem(placed)


class TestLPOverCandidates:
    def test_unconstrained_lp_matches_closest(self, maj_placed):
        """With capacity 1 the LP over candidates reproduces the implicit
        closest strategy's network delay exactly (closest quorums are in
        the candidate set)."""
        sub = candidate_subsystem(maj_placed, random_extra=0)
        strat = optimize_access_strategies(sub, 1.0)
        lp_delay = evaluate(sub, strat).avg_network_delay
        closest_delay = evaluate(
            maj_placed, ThresholdClosestStrategy()
        ).avg_network_delay
        assert lp_delay == pytest.approx(closest_delay, abs=1e-6)

    def test_capacity_bound_respected(self, maj_placed):
        sub = candidate_subsystem(maj_placed, random_extra=8)
        cap = 0.85
        strat = optimize_access_strategies(sub, cap)
        loads = strat.node_loads(sub)
        assert np.all(loads <= cap + 1e-6)

    def test_lp_beats_balanced_at_balanced_load(self, maj_placed):
        """Capacity = q/n (the balanced strategy's load) lets the LP find
        strategies at least as good as balanced."""
        system = maj_placed.system
        cap = system.quorum_size / system.universe_size
        sub = candidate_subsystem(maj_placed, random_extra=16)
        strat = optimize_access_strategies(sub, cap + 1e-9)
        lp_delay = evaluate(sub, strat).avg_network_delay
        balanced_delay = evaluate(
            maj_placed, ThresholdBalancedStrategy()
        ).avg_network_delay
        assert lp_delay <= balanced_delay + 1e-6

    def test_response_time_improves_at_high_demand(self, maj_placed):
        """At demand 16000, LP-over-candidates beats the closest strategy
        (the same effect the paper shows for the Grid)."""
        alpha = 112.0
        sub = candidate_subsystem(maj_placed, random_extra=16)
        closest_resp = evaluate(
            maj_placed, closest_strategy(maj_placed), alpha=alpha
        ).avg_response_time
        best = np.inf
        for cap in (0.82, 0.9, 1.0):
            strat = optimize_access_strategies(sub, cap)
            resp = evaluate(sub, strat, alpha=alpha).avg_response_time
            best = min(best, resp)
        assert best <= closest_resp + 1e-6
