"""Tests for the LP -> filter -> round many-to-one placement pipeline."""

import numpy as np
import pytest

from repro.core.placement import PlacedQuorumSystem, Placement
from repro.errors import InfeasibleError, PlacementError
from repro.placement.filtering import lin_vitter_filter
from repro.placement.fractional import (
    element_loads_of_strategy,
    fractional_placement,
)
from repro.placement.gap import round_fractional_placement
from repro.placement.many_to_one import (
    best_many_to_one_placement,
    many_to_one_placement,
)
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.threshold import ThresholdQuorumSystem


class TestElementLoads:
    def test_uniform_grid(self):
        g = GridQuorumSystem(3)
        loads = element_loads_of_strategy(g, np.full(9, 1 / 9))
        assert np.allclose(loads, 5 / 9)

    def test_point_mass(self):
        g = GridQuorumSystem(2)
        p = np.zeros(4)
        p[3] = 1.0  # quorum (1,1) = {e2, e3, e1}
        loads = element_loads_of_strategy(g, p)
        assert loads.sum() == pytest.approx(3.0)


class TestFractionalPlacement:
    def test_unconstrained_collapses_to_v0(self, line_topology):
        """With capacity >= total load on v0's node, everything sits on v0."""
        g = GridQuorumSystem(2)
        caps = np.full(10, 10.0)
        frac = fractional_placement(line_topology, g, v0=4, capacities=caps)
        assert np.allclose(frac.x[:, 4], 1.0, atol=1e-6)
        assert frac.objective == pytest.approx(0.0, abs=1e-6)

    def test_capacity_forces_spread(self, line_topology):
        g = GridQuorumSystem(2)
        # Element load under uniform = 0.75 each, total 3.0; capacity 1.0
        # per node forces at least 3 nodes.
        caps = np.ones(10)
        frac = fractional_placement(line_topology, g, v0=4, capacities=caps)
        node_mass = (frac.x * 0.75).sum(axis=0)
        assert np.all(node_mass <= 1.0 + 1e-6)

    def test_rows_sum_to_one(self, line_topology):
        g = GridQuorumSystem(3)
        frac = fractional_placement(line_topology, g, v0=0)
        assert np.allclose(frac.x.sum(axis=1), 1.0, atol=1e-6)

    def test_infeasible_capacities(self, line_topology):
        g = GridQuorumSystem(2)
        caps = np.full(10, 0.1)  # total 1.0 < total load 3.0
        with pytest.raises(InfeasibleError):
            fractional_placement(line_topology, g, v0=0, capacities=caps)

    def test_objective_bounds_capacity_respecting_solutions(
        self, line_topology
    ):
        """LP relaxation lower-bounds every *capacity-respecting* integral
        placement (the rounded output may beat it by exceeding capacity)."""
        g = GridQuorumSystem(2)
        caps = np.ones(10)
        frac = fractional_placement(line_topology, g, v0=4, capacities=caps)
        # One element per node is capacity-respecting (load 0.75 <= 1).
        for assignment in ([3, 4, 5, 6], [0, 1, 2, 3], [4, 5, 6, 7]):
            placed = PlacedQuorumSystem(
                g, Placement(assignment), line_topology
            )
            integral = placed.delay_matrix[4].mean()
            assert frac.objective <= integral + 1e-6

    def test_non_enumerable_rejected(self, line_topology):
        qs = ThresholdQuorumSystem(49, 25)
        with pytest.raises(PlacementError):
            fractional_placement(line_topology, qs, v0=0)

    def test_bad_v0_rejected(self, line_topology):
        with pytest.raises(PlacementError):
            fractional_placement(line_topology, GridQuorumSystem(2), v0=99)


class TestLinVitterFilter:
    def test_identity_on_integral(self):
        x = np.eye(3)
        dist = np.array([5.0, 10.0, 20.0])
        filtered = lin_vitter_filter(x, dist, eps=0.5)
        assert np.allclose(filtered, x)

    def test_removes_distant_mass(self):
        # Element split 0.9 near / 0.1 far; far node beyond (1+eps)*D.
        x = np.array([[0.9, 0.1]])
        dist = np.array([1.0, 100.0])
        filtered = lin_vitter_filter(x, dist, eps=0.5)
        assert filtered[0, 1] == 0.0
        assert filtered[0, 0] == pytest.approx(1.0)

    def test_keeps_within_radius(self):
        x = np.array([[0.5, 0.5]])
        dist = np.array([10.0, 12.0])  # D = 11, radius 16.5 at eps=0.5
        filtered = lin_vitter_filter(x, dist, eps=0.5)
        assert np.allclose(filtered, x)

    def test_rows_renormalized(self):
        rng = np.random.default_rng(1)
        x = rng.dirichlet(np.ones(6), size=4)
        dist = rng.uniform(1, 50, size=6)
        filtered = lin_vitter_filter(x, dist, eps=1 / 3)
        assert np.allclose(filtered.sum(axis=1), 1.0)

    def test_zero_distance_element(self):
        x = np.array([[1.0, 0.0]])
        dist = np.array([0.0, 10.0])
        filtered = lin_vitter_filter(x, dist, eps=1 / 3)
        assert filtered[0, 0] == pytest.approx(1.0)

    def test_tolerance_relative_at_planet_scale(self):
        """Regression: the keep-tolerance was an absolute ``+ 1e-12``.
        Float dust on a ~300 ms radius is ~1e-8 — four orders of
        magnitude above the slack — so a node effectively *on* the
        radius could be cut by rounding. The tolerance is relative now:
        within 1e-9 of the radius is kept at any distance scale."""
        x = np.array([[0.5, 0.5]])
        # D ~ 200, radius ~ 300; the far node overshoots the radius by
        # 2e-10 relative (~6e-8 ms) — pure dust at this scale.
        dist = np.array([100.0, 300.0 * (1.0 + 2e-10)])
        filtered = lin_vitter_filter(x, dist, eps=0.5)
        assert np.allclose(filtered, x)

    def test_tolerance_does_not_dominate_micro_scale_rows(self):
        """The absolute slack also dwarfed rows whose distances are
        themselves ~1e-12, keeping nodes ~7x beyond the radius."""
        x = np.array([[0.9, 0.1]])
        dist = np.array([0.0, 1e-12])  # D = 1e-13, radius 1.5e-13
        filtered = lin_vitter_filter(x, dist, eps=0.5)
        assert filtered[0, 1] == 0.0
        assert filtered[0, 0] == pytest.approx(1.0)

    def test_exact_radius_kept_across_scales(self):
        for scale in (1e-6, 1.0, 1e3, 1e8):
            x = np.array([[0.5, 0.5]])
            # D = 2*scale, radius = 3*scale: node 1 sits exactly on it.
            dist = np.array([1.0, 3.0]) * scale
            filtered = lin_vitter_filter(x, dist, eps=0.5)
            assert np.allclose(filtered, x), f"scale={scale}"

    def test_distance_zero_row_keeps_exact_zero_nodes(self):
        """A row entirely on distance-0 nodes has radius 0; the relative
        tolerance must keep those nodes (losing all mass raised)."""
        x = np.array([[0.5, 0.5, 0.0]])
        dist = np.array([0.0, 0.0, 10.0])
        filtered = lin_vitter_filter(x, dist, eps=1 / 3)
        assert np.allclose(filtered, x)

    def test_bad_eps(self):
        with pytest.raises(PlacementError):
            lin_vitter_filter(np.eye(2), np.array([1.0, 2.0]), eps=0.0)

    def test_unnormalized_rows_rejected(self):
        with pytest.raises(PlacementError):
            lin_vitter_filter(
                np.array([[0.4, 0.4]]), np.array([1.0, 2.0])
            )


class TestGapRounding:
    def test_integral_input_round_trips(self):
        x = np.zeros((3, 5))
        x[0, 1] = x[1, 1] = x[2, 4] = 1.0
        dist = np.arange(5.0)
        loads = np.full(3, 0.5)
        placement = round_fractional_placement(x, dist, loads)
        assert placement.node_of(0) == 1
        assert placement.node_of(1) == 1
        assert placement.node_of(2) == 4

    def test_fractional_split_assigns_single_node(self):
        x = np.array([[0.5, 0.5]])
        dist = np.array([3.0, 7.0])
        placement = round_fractional_placement(x, dist, np.array([1.0]))
        assert placement.node_of(0) in (0, 1)

    def test_min_cost_preference(self):
        """Two elements, two nodes with one slot each: matching must pick
        the cheaper perfect matching."""
        x = np.array([[0.5, 0.5], [0.5, 0.5]])
        dist = np.array([1.0, 100.0])
        placement = round_fractional_placement(
            x, dist, np.array([1.0, 1.0])
        )
        # Both on node 0 is impossible (one slot); one goes to node 1.
        nodes = {placement.node_of(0), placement.node_of(1)}
        assert nodes == {0, 1}

    def test_capacity_violation_bounded(self, line_topology):
        """Rounded loads respect the pipeline's theoretical guarantee:
        filtering inflates capacity by at most (1+eps)/eps and rounding
        adds at most one element's load per node."""
        g = GridQuorumSystem(3)
        caps = np.full(10, 1.0)
        eps = 1.0 / 3.0
        placement = many_to_one_placement(
            line_topology, g, v0=0, capacities=caps, eps=eps
        )
        element_load = 5 / 9  # uniform grid element load
        loads = np.bincount(
            placement.assignment, minlength=10
        ) * element_load
        bound = (1 + eps) / eps * caps + element_load
        assert np.all(loads <= bound + 1e-9)

    def test_shape_validation(self):
        with pytest.raises(PlacementError):
            round_fractional_placement(
                np.eye(2), np.array([1.0]), np.array([1.0, 1.0])
            )
        with pytest.raises(PlacementError):
            round_fractional_placement(
                np.eye(2), np.array([1.0, 2.0]), np.array([1.0])
            )


class TestManyToOnePipeline:
    def test_loose_capacity_collapses(self, line_topology):
        g = GridQuorumSystem(2)
        placement = many_to_one_placement(
            line_topology, g, v0=4, capacities=np.full(10, 10.0)
        )
        assert placement.support_set.size == 1
        assert placement.node_of(0) == 4

    def test_tight_capacity_spreads(self, line_topology):
        """With a permissive filter (large eps keeps the LP's spread),
        tight capacities force a multi-node support."""
        g = GridQuorumSystem(2)
        placement = many_to_one_placement(
            line_topology, g, v0=4, capacities=np.ones(10), eps=10.0
        )
        assert placement.support_set.size >= 2

    def test_best_search_reports_consistent_winner(self, line_topology):
        g = GridQuorumSystem(2)
        result = best_many_to_one_placement(
            line_topology, g, capacities=np.ones(10)
        )
        assert result.avg_network_delay == pytest.approx(
            min(result.delays_by_candidate.values())
        )

    def test_best_search_infeasible_everywhere(self, line_topology):
        g = GridQuorumSystem(2)
        with pytest.raises(InfeasibleError):
            best_many_to_one_placement(
                line_topology, g, capacities=np.full(10, 0.01)
            )

    def test_many_to_one_beats_one_to_one_delay(self, planetlab):
        """The paper's Figure 8.9 effect: collapse reduces network delay."""
        from repro.placement.search import best_placement

        g = GridQuorumSystem(4)
        o2o = best_placement(planetlab, g)
        m2o = best_many_to_one_placement(
            planetlab,
            g,
            capacities=np.full(50, 0.8),
            candidates=np.arange(10),
        )
        assert m2o.avg_network_delay < o2o.avg_network_delay
