"""Tests for the dynamics subsystem (`repro.dynamics`).

The two acceptance pins sit in :class:`TestReplayDeterminism` and
:class:`TestIncrementalVsCold`: replays are bit-identical for any worker
count, and the incremental controller's strategy objectives match a
cold-reassembly-per-epoch controller within 1e-9 at every re-optimization
epoch — on both LP backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.controller import (
    PeriodicPolicy,
    StaticPolicy,
    ThresholdPolicy,
    parse_policy,
)
from repro.dynamics.events import (
    CapacityEvent,
    ChurnEvent,
    RttDriftEvent,
    ScenarioTrace,
    effective_rtt,
)
from repro.dynamics.replay import CLAIRVOYANT, replay
from repro.dynamics.scenarios import (
    combine,
    diurnal_scenario,
    flash_crowd_scenario,
    partition_heal_scenario,
)
from repro.errors import DynamicsError
from repro.quorums.grid import GridQuorumSystem
from repro.runtime.cache import ResultCache
from repro.runtime.runner import GridRunner

GRID = GridQuorumSystem(2)

#: Forces the scipy fallback alongside the auto-probed (HiGHS when
#: importable) backend; pool workers inherit the environment via fork.
BACKENDS = ["auto", "scipy"]


def _force_backend(monkeypatch, backend_env: str) -> None:
    if backend_env == "scipy":
        monkeypatch.setenv("REPRO_LP_BACKEND", "scipy")


def _mixed_trace(topology, n_epochs=6):
    """Drift + capacity crunch + one partition/heal on a small topology."""
    n = topology.n_nodes
    rng = np.random.default_rng(5)
    events = [
        RttDriftEvent(
            epoch=t, factors=1.0 + 0.3 * rng.uniform(-1, 1, size=n)
        )
        for t in range(1, n_epochs)
    ]
    crunched = np.full(n, 1.0)
    crunched[: n // 2] = 0.85
    events.append(CapacityEvent(epoch=2, capacities=crunched))
    events.append(CapacityEvent(epoch=4, capacities=np.ones(n)))
    events.append(ChurnEvent(epoch=3, node=n - 1, up=False))
    events.append(ChurnEvent(epoch=5, node=n - 1, up=True))
    return ScenarioTrace(n, n_epochs, events)


class TestTraceValidation:
    def test_epoch_out_of_range(self):
        with pytest.raises(DynamicsError):
            ScenarioTrace(4, 3, [ChurnEvent(epoch=3, node=0, up=False)])

    def test_duplicate_scalar_event_per_epoch_rejected(self):
        with pytest.raises(DynamicsError, match="ambiguous"):
            ScenarioTrace(
                2,
                4,
                [
                    RttDriftEvent(epoch=1, factors=[1.0, 1.1]),
                    RttDriftEvent(epoch=1, factors=[1.2, 1.0]),
                ],
            )

    def test_vector_shape_must_match_node_space(self):
        with pytest.raises(DynamicsError):
            ScenarioTrace(3, 4, [CapacityEvent(epoch=0, capacities=[1.0])])

    def test_churn_must_alternate(self):
        with pytest.raises(DynamicsError, match="already"):
            ScenarioTrace(
                3,
                4,
                [
                    ChurnEvent(epoch=1, node=0, up=False),
                    ChurnEvent(epoch=2, node=0, up=False),
                ],
            )
        with pytest.raises(DynamicsError, match="already"):
            ScenarioTrace(3, 4, [ChurnEvent(epoch=1, node=0, up=True)])

    def test_cannot_empty_the_system(self):
        with pytest.raises(DynamicsError, match="no node up"):
            ScenarioTrace(
                2,
                4,
                [
                    ChurnEvent(epoch=1, node=0, up=False),
                    ChurnEvent(epoch=2, node=1, up=False),
                ],
            )

    def test_factors_must_be_positive(self):
        with pytest.raises(DynamicsError):
            RttDriftEvent(epoch=0, factors=[1.0, 0.0])


class TestStateFolding:
    def test_values_carry_forward_and_flags_mark_changes(self, line_topology):
        n = line_topology.n_nodes
        caps = np.full(n, 0.5)
        trace = ScenarioTrace(
            n,
            4,
            [
                RttDriftEvent(epoch=1, factors=np.full(n, 1.2)),
                CapacityEvent(epoch=2, capacities=caps),
                ChurnEvent(epoch=2, node=3, up=False),
            ],
        )
        states = trace.states(line_topology)
        assert states[0].rtt_changed and states[0].caps_changed
        assert np.all(states[0].rtt_factors == 1.0)
        assert states[1].rtt_changed and not states[1].caps_changed
        assert states[2].caps_changed and states[2].churned
        assert not states[3].rtt_changed
        # values persist until overwritten
        assert np.all(states[3].rtt_factors == 1.2)
        assert np.all(states[3].capacities == 0.5)
        assert not states[2].up[3] and not states[3].up[3]
        assert states[1].up[3]

    def test_segments_split_at_churn(self, line_topology):
        trace = _mixed_trace(line_topology, n_epochs=6)
        assert trace.segments() == [(0, 3), (3, 5), (5, 6)]

    def test_no_op_event_does_not_flag_change(self, line_topology):
        n = line_topology.n_nodes
        trace = ScenarioTrace(
            n, 3, [RttDriftEvent(epoch=1, factors=np.ones(n))]
        )
        assert not trace.states(line_topology)[1].rtt_changed

    def test_effective_rtt_symmetric_zero_diagonal(self, line_topology):
        factors = np.linspace(0.8, 1.4, line_topology.n_nodes)
        rtt = effective_rtt(line_topology.rtt, factors)
        assert np.allclose(rtt, rtt.T)
        assert np.all(np.diag(rtt) == 0.0)


class TestScenarioGenerators:
    def test_deterministic_for_fixed_seed(self, line_topology):
        for generator in (
            diurnal_scenario,
            flash_crowd_scenario,
            partition_heal_scenario,
        ):
            a = generator(line_topology, 8, seed=3)
            b = generator(line_topology, 8, seed=3)
            assert len(a.events) == len(b.events)
            for ea, eb in zip(a.events, b.events):
                assert type(ea) is type(eb)
                assert ea.epoch == eb.epoch

    def test_diurnal_factors_positive_and_oscillating(self, line_topology):
        trace = diurnal_scenario(line_topology, 12, seed=1, amplitude=0.4)
        factor_stack = np.stack(
            [e.factors for e in trace.events]
        )
        assert np.all(factor_stack > 0)
        assert factor_stack.std() > 0.05  # actually oscillates

    def test_flash_crowd_restores_base_capacities(self, line_topology):
        trace = flash_crowd_scenario(
            line_topology, 10, seed=2, depth=0.5, start=2, length=3
        )
        states = trace.states(line_topology)
        assert np.all(states[1].capacities == line_topology.capacities)
        assert states[2].capacities.min() == pytest.approx(0.5)
        assert np.all(states[5].capacities == line_topology.capacities)

    def test_partition_heal_round_trips_membership(self, line_topology):
        trace = partition_heal_scenario(
            line_topology, 9, seed=4, region_size=3, start=3, heal=6
        )
        states = trace.states(line_topology)
        assert states[2].up.all()
        assert states[3].up.sum() == line_topology.n_nodes - 3
        assert states[6].up.all()
        assert trace.segments() == [(0, 3), (3, 6), (6, 9)]

    def test_flash_crowd_rejects_overlapping_waves(self, line_topology):
        """A user-supplied wave length reaching into the next wave would
        either collide with its crunch event or silently truncate a wave;
        both are refused up front with an actionable message."""
        with pytest.raises(DynamicsError, match="overlaps"):
            flash_crowd_scenario(line_topology, 20, waves=2, length=10)
        with pytest.raises(DynamicsError, match="overlaps"):
            flash_crowd_scenario(line_topology, 20, waves=2, length=12)
        # a single wave may run as long as it likes
        flash_crowd_scenario(line_topology, 20, waves=1, length=18)

    def test_mixed_scenario_is_shared_and_deterministic(self, line_topology):
        """The CLI's --scenario mixed and fig_dyn replay one definition."""
        from repro.dynamics.scenarios import mixed_scenario

        a = mixed_scenario(line_topology, 8, seed=7)
        b = mixed_scenario(line_topology, 8, seed=7)
        assert len(a.events) == len(b.events)
        assert len(a.segments()) == 3  # partition + heal included

    def test_combine_rejects_mismatched_timelines(self, line_topology):
        with pytest.raises(DynamicsError):
            combine(
                diurnal_scenario(line_topology, 8, seed=1),
                diurnal_scenario(line_topology, 9, seed=1),
            )

    def test_combine_rejects_ambiguous_overlap(self, line_topology):
        with pytest.raises(DynamicsError, match="ambiguous"):
            combine(
                diurnal_scenario(line_topology, 6, seed=1),
                diurnal_scenario(line_topology, 6, seed=2),
            )


class TestPolicies:
    def test_parse_specs(self):
        assert isinstance(parse_policy("static"), StaticPolicy)
        assert parse_policy("periodic:3") == PeriodicPolicy(3)
        assert parse_policy("threshold:0.2") == ThresholdPolicy(0.2)
        assert parse_policy("clairvoyant") == PeriodicPolicy(1)

    def test_bad_specs_rejected(self):
        for spec in (
            "periodic", "periodic:x", "threshold:-1", "nope:1",
            "threshold:nan", "threshold:inf",  # would never re-optimize
            "periodic:0", "periodic:-3",  # period must be >= 1
            "threshold:0",  # zero degradation re-optimizes on noise
            "", "periodic:1:2", "threshold:",
        ):
            with pytest.raises(DynamicsError):
                parse_policy(spec)

    def test_threshold_triggers_only_past_the_bound(self):
        policy = ThresholdPolicy(0.10)
        assert policy.should_reoptimize(0, 0.0, np.inf)
        assert not policy.should_reoptimize(1, 104.0, 100.0)
        assert policy.should_reoptimize(1, 111.0, 100.0)

    def test_reopt_cadence_in_a_replay(self, clustered_topology):
        n = clustered_topology.n_nodes
        rng = np.random.default_rng(9)
        trace = ScenarioTrace(
            n,
            6,
            [
                RttDriftEvent(
                    epoch=t,
                    factors=1.0 + 0.25 * rng.uniform(-1, 1, size=n),
                )
                for t in range(1, 6)
            ],
        )
        result = replay(
            clustered_topology,
            GRID,
            trace,
            policies=("static", "periodic:2"),
        )
        assert result.series["static"].reopt_count == 1
        periodic = result.series["periodic:2"]
        assert list(periodic.reoptimized) == [
            True, False, True, False, True, False,
        ]
        clair = result.series[CLAIRVOYANT]
        assert clair.reopt_count == 6
        # single segment: exactly one assembly each under incremental mode
        assert int(clair.assemblies.sum()) == 1

    def test_regret_is_non_negative_under_drift_and_churn(
        self, clustered_topology
    ):
        """With capacities untouched, every policy's strategy is feasible
        at every epoch, so the clairvoyant is a true per-epoch floor."""
        n = clustered_topology.n_nodes
        rng = np.random.default_rng(9)
        events: list = [
            RttDriftEvent(
                epoch=t, factors=1.0 + 0.3 * rng.uniform(-1, 1, size=n)
            )
            for t in range(1, 6)
        ]
        events.append(ChurnEvent(epoch=3, node=n - 1, up=False))
        trace = ScenarioTrace(n, 6, events)
        result = replay(
            clustered_topology,
            GRID,
            trace,
            policies=("static", "threshold:0.05"),
        )
        for spec in result.policies:
            assert np.all(result.regret(spec) >= -1e-9)
            assert result.series[spec].max_overload.max() <= 1e-9

    def test_stale_strategy_overloads_through_a_crunch(
        self, clustered_topology
    ):
        """During a capacity crunch the static policy keeps its stale
        strategy — possibly cheaper on raw delay, but only by violating
        the tightened capacities, which the overload series exposes while
        the re-optimizer stays (numerically) feasible."""
        n = clustered_topology.n_nodes
        crunched = np.full(n, 0.8)
        trace = ScenarioTrace(
            n,
            4,
            [
                CapacityEvent(epoch=1, capacities=crunched),
                CapacityEvent(epoch=3, capacities=np.ones(n)),
            ],
        )
        result = replay(
            clustered_topology, GRID, trace, policies=("static",)
        )
        static = result.series["static"]
        clair = result.series[CLAIRVOYANT]
        assert static.max_overload[1:3].max() > 1e-6
        assert clair.max_overload.max() <= 1e-6

    def test_infeasible_epochs_recorded_and_recovered(
        self, clustered_topology
    ):
        n = clustered_topology.n_nodes
        starved = np.full(n, 0.05)  # far below any feasible profile
        trace = ScenarioTrace(
            n,
            4,
            [
                CapacityEvent(epoch=1, capacities=starved),
                CapacityEvent(epoch=3, capacities=np.ones(n)),
            ],
        )
        result = replay(
            clustered_topology, GRID, trace, policies=(CLAIRVOYANT,),
            include_clairvoyant=False,
        )
        series = result.series[CLAIRVOYANT]
        assert list(series.infeasible) == [False, True, True, False]
        assert list(series.reoptimized) == [True, False, False, True]
        # the carried strategy keeps being evaluated through the outage
        assert np.all(np.isfinite(series.expected_delay))


class TestReplayValidation:
    def test_unknown_mode(self, clustered_topology):
        trace = ScenarioTrace(clustered_topology.n_nodes, 2)
        with pytest.raises(DynamicsError):
            replay(clustered_topology, GRID, trace, mode="lukewarm")

    def test_needs_a_policy(self, clustered_topology):
        trace = ScenarioTrace(clustered_topology.n_nodes, 2)
        with pytest.raises(DynamicsError):
            replay(
                clustered_topology, GRID, trace, policies=(),
                include_clairvoyant=False,
            )

    def test_periodic_one_folds_into_clairvoyant(self, clustered_topology):
        """periodic:1 *is* the per-epoch re-optimizer: listing it must not
        replay the same policy twice under two names (or collide with the
        auto-added baseline)."""
        trace = ScenarioTrace(clustered_topology.n_nodes, 2)
        result = replay(
            clustered_topology, GRID, trace,
            policies=("periodic:1", CLAIRVOYANT),
        )
        assert set(result.series) == {CLAIRVOYANT}
        assert np.all(result.regret(CLAIRVOYANT) == 0.0)

    def test_runner_jobs_conflict_raises(self, clustered_topology):
        from repro.errors import ReproError

        trace = ScenarioTrace(clustered_topology.n_nodes, 2)
        with GridRunner() as runner:
            with pytest.raises(ReproError, match="jobs"):
                replay(
                    clustered_topology, GRID, trace, runner=runner, jobs=4
                )

    def test_runner_cache_attached_and_conflicts_raise(
        self, clustered_topology, tmp_path
    ):
        trace = ScenarioTrace(clustered_topology.n_nodes, 2)
        cache = ResultCache(tmp_path / "a")
        with GridRunner() as runner:
            replay(clustered_topology, GRID, trace, runner=runner,
                   cache=cache)
            assert runner.cache is None  # detached after the call
            assert cache.stores > 0
        from repro.errors import ReproError

        other = ResultCache(tmp_path / "b")
        with GridRunner(cache=cache) as runner:
            with pytest.raises(ReproError, match="cache"):
                replay(clustered_topology, GRID, trace, runner=runner,
                       cache=other)

    def test_trace_topology_size_mismatch(self, clustered_topology):
        trace = ScenarioTrace(clustered_topology.n_nodes + 1, 2)
        with pytest.raises(DynamicsError):
            replay(clustered_topology, GRID, trace)


class TestResultAccessors:
    @pytest.fixture(scope="class")
    def result(self, clustered_topology):
        trace = _mixed_trace(clustered_topology)
        return replay(
            clustered_topology, GRID, trace,
            policies=("static", "threshold:0.05"),
        )

    def test_unknown_policy_regret_is_tagged(self, result):
        """Regression: an unknown spec used to escape as a bare KeyError;
        it must be a ReproError-family failure naming the known specs."""
        with pytest.raises(DynamicsError, match="no-such-policy"):
            result.regret("no-such-policy")
        with pytest.raises(DynamicsError, match="threshold:0.05"):
            result.regret("no-such-policy")

    def test_cumulative_series_lengths_and_monotonicity(self, result):
        n = result.n_epochs
        for spec in result.series:
            series = result.series[spec]
            assert series.cumulative_solves.shape == (n,)
            assert series.cumulative_assemblies.shape == (n,)
            assert np.all(np.diff(series.cumulative_solves) >= 0)
            assert np.all(np.diff(series.cumulative_assemblies) >= 0)
            assert result.cumulative_regret(spec).shape == (n,)
        cum = result.cumulative_regret("static")
        assert cum[-1] == pytest.approx(float(result.regret("static").sum()))

    def test_segment_series_rejects_mismatched_lengths(self):
        from repro.dynamics.controller import SegmentSeries

        kwargs = {
            name: np.zeros(4)
            for name in (
                "expected_delay", "reoptimized", "infeasible",
                "max_overload", "lp_solves", "assemblies",
                "estimation_error", "staleness", "probe_operations",
            )
        }
        SegmentSeries(**kwargs)  # consistent lengths are fine
        with pytest.raises(DynamicsError, match="epoch count"):
            SegmentSeries(**{**kwargs, "staleness": np.zeros(3)})
        with pytest.raises(DynamicsError, match="1-D"):
            SegmentSeries(**{**kwargs, "lp_solves": np.zeros((4, 1))})

    def test_policy_series_rejects_mismatched_lengths(self):
        from repro.dynamics.replay import PolicySeries

        kwargs = {
            name: np.zeros(5)
            for name in (
                "expected_delay", "reoptimized", "infeasible",
                "max_overload", "lp_solves", "assemblies",
                "estimation_error", "staleness", "probe_operations",
            )
        }
        PolicySeries(policy="static", **kwargs)
        with pytest.raises(DynamicsError, match="epoch count"):
            PolicySeries(
                policy="static",
                **{**kwargs, "probe_operations": np.zeros(2)},
            )
        with pytest.raises(DynamicsError, match="1-D"):
            PolicySeries(
                policy="static",
                **{**kwargs, "expected_delay": np.zeros((5, 2))},
            )


def _assert_series_identical(a, b) -> None:
    assert np.array_equal(a.expected_delay, b.expected_delay)
    assert np.array_equal(a.reoptimized, b.reoptimized)
    assert np.array_equal(a.infeasible, b.infeasible)
    assert np.array_equal(a.max_overload, b.max_overload)
    assert np.array_equal(a.lp_solves, b.lp_solves)
    assert np.array_equal(a.assemblies, b.assemblies)
    assert np.array_equal(a.estimation_error, b.estimation_error)
    assert np.array_equal(a.staleness, b.staleness)
    assert np.array_equal(a.probe_operations, b.probe_operations)


class TestReplayDeterminism:
    """ISSUE acceptance: jobs=N bit-identical to jobs=1, both backends."""

    POLICIES = ("static", "threshold:0.05")

    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_jobs_2_bit_identical_to_jobs_1(
        self, clustered_topology, monkeypatch, backend_env
    ):
        _force_backend(monkeypatch, backend_env)
        trace = _mixed_trace(clustered_topology)
        serial = replay(
            clustered_topology, GRID, trace, policies=self.POLICIES
        )
        with GridRunner(jobs=2) as runner:
            parallel = replay(
                clustered_topology, GRID, trace, policies=self.POLICIES,
                runner=runner,
            )
        assert set(serial.series) == set(parallel.series)
        for spec in serial.series:
            _assert_series_identical(
                serial.series[spec], parallel.series[spec]
            )
        for a, b in zip(serial.placements, parallel.placements):
            assert np.array_equal(a, b)

    def test_repeated_replays_identical(self, clustered_topology):
        trace = _mixed_trace(clustered_topology)
        first = replay(clustered_topology, GRID, trace)
        second = replay(clustered_topology, GRID, trace)
        for spec in first.series:
            _assert_series_identical(
                first.series[spec], second.series[spec]
            )

    def test_cache_round_trip_bit_identical(
        self, clustered_topology, tmp_path
    ):
        trace = _mixed_trace(clustered_topology)
        cache = ResultCache(tmp_path / "dyn")
        first = replay(clustered_topology, GRID, trace, cache=cache)
        stores = cache.stores
        assert stores > 0
        second = replay(clustered_topology, GRID, trace, cache=cache)
        assert cache.stores == stores  # every point answered from cache
        assert cache.hits >= stores
        for spec in first.series:
            _assert_series_identical(
                first.series[spec], second.series[spec]
            )


class TestIncrementalVsCold:
    """ISSUE acceptance: incremental strategy objectives within 1e-9 of
    cold re-assembly at every epoch, on both LP backends.

    The clairvoyant policy re-optimizes at *every* epoch, so its delay
    series is exactly the per-epoch sequence of strategy-LP objectives —
    the every-epoch comparison the acceptance bar names. Policies that
    carry a strategy across epochs are compared at their re-optimization
    epochs: between solves the two modes legitimately hold different
    (equal-objective) vertices of degenerate optima, whose *evaluations*
    under later drifted delays may differ beyond solver tolerance.
    """

    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_clairvoyant_objectives_match_every_epoch(
        self, clustered_topology, monkeypatch, backend_env
    ):
        _force_backend(monkeypatch, backend_env)
        trace = _mixed_trace(clustered_topology)
        kwargs = dict(policies=(CLAIRVOYANT,), include_clairvoyant=False)
        warm = replay(
            clustered_topology, GRID, trace, mode="incremental", **kwargs
        )
        cold = replay(clustered_topology, GRID, trace, mode="cold", **kwargs)
        gap = np.abs(
            warm.series[CLAIRVOYANT].expected_delay
            - cold.series[CLAIRVOYANT].expected_delay
        )
        assert gap.max() <= 1e-9
        # and the cold baseline really does reassemble per epoch
        assert int(cold.series[CLAIRVOYANT].assemblies.sum()) == trace.n_epochs
        assert (
            int(warm.series[CLAIRVOYANT].assemblies.sum())
            == len(trace.segments())
        )

    @pytest.mark.parametrize("backend_env", BACKENDS)
    def test_policy_objectives_match_at_reopt_epochs(
        self, clustered_topology, monkeypatch, backend_env
    ):
        _force_backend(monkeypatch, backend_env)
        trace = _mixed_trace(clustered_topology)
        kwargs = dict(
            policies=("static", "periodic:2", "threshold:0.05"),
            include_clairvoyant=False,
        )
        warm = replay(
            clustered_topology, GRID, trace, mode="incremental", **kwargs
        )
        cold = replay(clustered_topology, GRID, trace, mode="cold", **kwargs)
        for spec in warm.series:
            a, b = warm.series[spec], cold.series[spec]
            assert np.array_equal(a.reoptimized, b.reoptimized)
            solved = a.reoptimized
            assert solved.any()
            gap = np.abs(
                a.expected_delay[solved] - b.expected_delay[solved]
            )
            assert gap.max() <= 1e-9
