"""Property-based tests (hypothesis) for core invariants.

These target the load-bearing mathematical properties:

* quorum intersection across system families and parameters,
* order-statistics formulas vs brute force,
* metric axioms of generated topologies,
* load conservation and linearity,
* response-time model monotonicity,
* filtering/rounding invariants of the placement pipeline.
"""

import itertools
from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.load import node_loads
from repro.core.placement import PlacedQuorumSystem, Placement
from repro.core.response_time import evaluate
from repro.core.strategy import ExplicitStrategy
from repro.network.generators import ClusterSpec, generate_cluster_topology
from repro.network.graph import Topology
from repro.placement.filtering import lin_vitter_filter
from repro.placement.gap import round_fractional_placement
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.order_stats import (
    expected_max_of_random_subset,
    max_order_statistic_pmf,
)
from repro.quorums.threshold import ThresholdQuorumSystem
from repro.quorums.weighted import WeightedMajorityQuorumSystem


# ---------------------------------------------------------------------------
# Quorum systems
# ---------------------------------------------------------------------------
@st.composite
def threshold_params(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    q = draw(st.integers(min_value=n // 2 + 1, max_value=n))
    return n, q


@given(threshold_params())
@settings(max_examples=60, deadline=None)
def test_threshold_quorums_pairwise_intersect(params):
    n, q = params
    qs = ThresholdQuorumSystem(n, q)
    if qs.num_quorums > 500:
        return
    quorums = qs.quorums
    for a, b in itertools.combinations(quorums, 2):
        assert a & b


@given(st.integers(min_value=1, max_value=7))
@settings(max_examples=7, deadline=None)
def test_grid_quorums_pairwise_intersect(k):
    g = GridQuorumSystem(k)
    for a, b in itertools.combinations(g.quorums, 2):
        assert a & b


@given(
    st.lists(
        st.integers(min_value=1, max_value=9), min_size=1, max_size=8
    )
)
@settings(max_examples=50, deadline=None)
def test_weighted_majority_intersection_and_minimality(weights):
    w = WeightedMajorityQuorumSystem(weights)
    quorums = w.quorums
    for a, b in itertools.combinations(quorums, 2):
        assert a & b
    for a, b in itertools.permutations(quorums, 2):
        assert not a < b


# ---------------------------------------------------------------------------
# Order statistics
# ---------------------------------------------------------------------------
@given(threshold_params())
@settings(max_examples=40, deadline=None)
def test_order_stat_pmf_is_distribution(params):
    n, q = params
    pmf = max_order_statistic_pmf(n, q)
    assert pmf.sum() == pytest.approx(1.0)
    assert np.all(pmf >= 0)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1000.0),
        min_size=2,
        max_size=8,
    ),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_expected_max_matches_bruteforce(values, data):
    q = data.draw(
        st.integers(min_value=1, max_value=len(values)), label="q"
    )
    arr = np.asarray(values)
    exact = expected_max_of_random_subset(arr, q)
    subsets = list(itertools.combinations(values, q))
    brute = sum(max(s) for s in subsets) / len(subsets)
    assert exact == pytest.approx(brute, rel=1e-9, abs=1e-9)


# ---------------------------------------------------------------------------
# Topology generation
# ---------------------------------------------------------------------------
@given(
    st.integers(min_value=2, max_value=25),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_generated_topologies_are_metric(n_sites, seed):
    topo = generate_cluster_topology(
        n_sites,
        [
            ClusterSpec("a", 40.0, -74.0, 2.0, 0.6),
            ClusterSpec("b", 48.0, 10.0, 2.0, 0.4),
        ],
        seed=seed,
    )
    topo.validate_metric()
    assert topo.n_nodes == n_sites


# ---------------------------------------------------------------------------
# Loads and response time
# ---------------------------------------------------------------------------
@st.composite
def grid_profile(draw):
    k = draw(st.integers(min_value=2, max_value=3))
    n_nodes = draw(st.integers(min_value=k * k, max_value=k * k + 4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 100, size=(n_nodes, 2))
    diff = points[:, None, :] - points[None, :, :]
    metric = np.sqrt((diff**2).sum(axis=2))
    topo = Topology(metric, metric_closure=False)
    assignment = rng.permutation(n_nodes)[: k * k]
    placed = PlacedQuorumSystem(
        GridQuorumSystem(k), Placement(assignment), topo
    )
    profile = rng.dirichlet(np.ones(k * k), size=n_nodes)
    return placed, profile


@given(grid_profile())
@settings(max_examples=30, deadline=None)
def test_load_conservation(case):
    """Sum of node loads == expected accessed quorum size under the
    average strategy (load is neither created nor destroyed)."""
    placed, profile = case
    loads = node_loads(placed, profile)
    sizes = np.array([len(q) for q in placed.system.quorums])
    expected = float((profile.mean(axis=0) * sizes).sum())
    assert loads.sum() == pytest.approx(expected)


@given(grid_profile())
@settings(max_examples=30, deadline=None)
def test_response_time_monotone_in_alpha(case):
    placed, profile = case
    strategy = ExplicitStrategy(profile)
    r0 = evaluate(placed, strategy, alpha=0.0)
    r1 = evaluate(placed, strategy, alpha=13.0)
    assert r1.avg_response_time >= r0.avg_response_time - 1e-9
    assert r0.avg_response_time == pytest.approx(r0.avg_network_delay)


@given(grid_profile())
@settings(max_examples=30, deadline=None)
def test_response_dominated_by_delay_plus_max_load(case):
    placed, profile = case
    strategy = ExplicitStrategy(profile)
    alpha = 29.0
    result = evaluate(placed, strategy, alpha=alpha)
    upper = result.avg_network_delay + alpha * result.max_node_load
    assert result.avg_response_time <= upper + 1e-9


# ---------------------------------------------------------------------------
# Placement pipeline invariants
# ---------------------------------------------------------------------------
@st.composite
def fractional_case(draw):
    n_elements = draw(st.integers(min_value=1, max_value=6))
    n_nodes = draw(st.integers(min_value=2, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    x = rng.dirichlet(np.ones(n_nodes), size=n_elements)
    dist = rng.uniform(0.0, 50.0, size=n_nodes)
    loads = rng.uniform(0.05, 1.0, size=n_elements)
    return x, dist, loads


@given(fractional_case(), st.floats(min_value=0.05, max_value=3.0))
@settings(max_examples=60, deadline=None)
def test_filter_keeps_rows_normalized_within_radius(case, eps):
    x, dist, _ = case
    filtered = lin_vitter_filter(x, dist, eps=eps)
    assert np.allclose(filtered.sum(axis=1), 1.0, atol=1e-9)
    frac_dist = x @ dist
    radius = (1.0 + eps) * frac_dist
    for u in range(x.shape[0]):
        support = np.flatnonzero(filtered[u] > 0)
        assert np.all(dist[support] <= radius[u] + 1e-9)


@given(fractional_case())
@settings(max_examples=60, deadline=None)
def test_rounding_assigns_within_support(case):
    x, dist, loads = case
    placement = round_fractional_placement(x, dist, loads)
    for u in range(x.shape[0]):
        w = placement.node_of(u)
        assert x[u, w] > 0


@given(fractional_case())
@settings(max_examples=60, deadline=None)
def test_rounding_respects_slot_counts(case):
    """No node receives more elements than ceil(its fractional mass)."""
    x, dist, loads = case
    placement = round_fractional_placement(x, dist, loads)
    mass = x.sum(axis=0)
    counts = placement.multiplicities(x.shape[1])
    for w in range(x.shape[1]):
        # Slot construction creates max(1, ceil(mass)) slots per node.
        assert counts[w] <= max(1, int(np.ceil(mass[w] + 1e-9)))


# ---------------------------------------------------------------------------
# Strategy matrix hygiene
# ---------------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_explicit_strategy_normalizes(n_clients, m, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.dirichlet(np.ones(m), size=n_clients)
    s = ExplicitStrategy(matrix)
    assert np.allclose(s.matrix.sum(axis=1), 1.0)
    assert np.all(s.matrix >= 0.0)
