"""Distribution-level equivalence: fluid backend vs the event engine.

The fluid backend (:mod:`repro.sim.fluid`) promises the *same workload
model* as the discrete-event reference, evaluated in bulk. That promise
has two parts, and this suite pins both:

* **exact** request conservation — ``issued == processed + dropped +
  in_flight`` holds to the integer on every run, failures included;
* **distributional** agreement — means and p50/p95/p99 percentiles of the
  response-time distribution match the event engine within a few percent
  on the bundled Planetlab topology and a synthetic WAN preset. (The
  backends use different random streams, so per-operation equality is
  neither expected nor meaningful — tolerances cover sampling noise at
  the test's operation counts.)

Failure runs are compared on conservation and accounting only: the fluid
backend abandons operations that lose a request to a crash instead of
replaying the event engine's timeout-and-resample loop, so completion
counts legitimately differ (documented in :mod:`repro.sim.fluid`).
"""

import numpy as np
import pytest

from repro.core.placement import PlacedQuorumSystem, Placement
from repro.core.strategy import (
    ExplicitStrategy,
    ThresholdBalancedStrategy,
    ThresholdClosestStrategy,
)
from repro.errors import SimulationError
from repro.network.generators import synthetic_wan
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.threshold import ThresholdQuorumSystem
from repro.sim.failures import CrashWindow, FailureSchedule
from repro.sim.generic import GenericQuorumSimulation
from repro.sim.workload import PoissonArrivals


def _threshold_placed(topology, n=5, q=3):
    sites = np.argsort(topology.mean_distances())[:n]
    return PlacedQuorumSystem(
        ThresholdQuorumSystem(n, q),
        Placement([int(s) for s in sites]),
        topology,
    )


def _run_both(placed, strategy, duration_ms=4_000.0, warmup_ms=400.0,
              **kwargs):
    results = {}
    for backend in ("events", "fluid"):
        sim = GenericQuorumSimulation(
            placed, strategy, backend=backend, **kwargs
        )
        results[backend] = sim.run(
            duration_ms=duration_ms, warmup_ms=warmup_ms
        )
    return results["events"], results["fluid"]


def _assert_conserved(result):
    assert result.requests_issued == (
        result.requests_processed
        + result.requests_dropped
        + result.requests_in_flight
    )


class TestBackendKnob:
    def test_unknown_backend_rejected(self, planetlab):
        placed = _threshold_placed(planetlab)
        with pytest.raises(SimulationError, match="backend"):
            GenericQuorumSimulation(
                placed, ThresholdBalancedStrategy(), backend="analytic"
            )

    def test_fluid_requires_open_loop_arrivals(self, planetlab):
        placed = _threshold_placed(planetlab)
        with pytest.raises(SimulationError, match="open-loop"):
            GenericQuorumSimulation(
                placed, ThresholdBalancedStrategy(), backend="fluid"
            )

    def test_default_backend_is_the_event_engine(self, planetlab):
        placed = _threshold_placed(planetlab)
        sim = GenericQuorumSimulation(placed, ThresholdBalancedStrategy())
        assert sim.backend == "events"


class TestLowLoadEquivalence:
    """With zero service time there is no queueing: response time is pure
    network delay, and the two backends sample the same distribution."""

    def test_planetlab_explicit_strategy(self, planetlab):
        placed = _threshold_placed(planetlab)
        ev, fl = _run_both(
            placed,
            ExplicitStrategy.uniform(placed),
            service_time_ms=0.0,
            seed=5,
            arrivals=PoissonArrivals(rate_per_ms=0.5, seed=6),
        )
        for r in (ev, fl):
            assert r.operations_completed > 1000
            _assert_conserved(r)
        assert fl.stats.mean_response_ms == pytest.approx(
            ev.stats.mean_response_ms, rel=0.05
        )
        assert fl.stats.mean_network_delay_ms == pytest.approx(
            ev.stats.mean_network_delay_ms, rel=0.05
        )

    def test_deterministic_closest_strategy_matches_exactly_in_mean(
        self, planetlab
    ):
        """Closest is deterministic per client node, so the only noise is
        which node each arrival lands on — tighter tolerance applies."""
        placed = _threshold_placed(planetlab)
        ev, fl = _run_both(
            placed,
            ThresholdClosestStrategy(),
            service_time_ms=0.0,
            seed=2,
            arrivals=PoissonArrivals(rate_per_ms=0.5, seed=3),
        )
        assert fl.stats.mean_response_ms == pytest.approx(
            ev.stats.mean_response_ms, rel=0.02
        )


class TestModerateLoadEquivalence:
    """Per-server utilization ~0.5: queueing contributes, and the full
    percentile profile must still line up."""

    @pytest.fixture(scope="class")
    def pair(self, planetlab):
        placed = _threshold_placed(planetlab)
        return _run_both(
            placed,
            ThresholdBalancedStrategy(),
            service_time_ms=1.0,
            seed=11,
            arrivals=PoissonArrivals(rate_per_ms=0.8, seed=12),
            client_nodes=np.arange(planetlab.n_nodes),
        )

    def test_mean_and_percentiles_agree(self, pair):
        ev, fl = pair
        assert fl.stats.mean_response_ms == pytest.approx(
            ev.stats.mean_response_ms, rel=0.10
        )
        for key, got in fl.stats.percentiles().items():
            want = ev.stats.percentiles()[key]
            assert got == pytest.approx(want, rel=0.15), key

    def test_per_server_rates_and_utilizations_agree(self, pair):
        ev, fl = pair
        np.testing.assert_allclose(
            np.asarray(fl.per_node_request_rate),
            np.asarray(ev.per_node_request_rate),
            rtol=0.15,
        )
        np.testing.assert_allclose(
            np.asarray(fl.server_utilizations),
            np.asarray(ev.server_utilizations),
            rtol=0.15,
        )

    def test_conservation_is_exact_on_both(self, pair):
        for r in pair:
            assert r.requests_issued > 0
            _assert_conserved(r)


class TestWanPreset:
    def test_synthetic_wan_distributions_match(self):
        topo = synthetic_wan(200)
        placed = _threshold_placed(topo)
        ev, fl = _run_both(
            placed,
            ThresholdBalancedStrategy(),
            duration_ms=3_000.0,
            warmup_ms=300.0,
            service_time_ms=1.0,
            seed=21,
            arrivals=PoissonArrivals(rate_per_ms=1.0, seed=22),
            client_nodes=np.arange(topo.n_nodes),
        )
        assert fl.stats.mean_response_ms == pytest.approx(
            ev.stats.mean_response_ms, rel=0.10
        )
        assert fl.stats.p95_response_ms == pytest.approx(
            ev.stats.p95_response_ms, rel=0.15
        )
        for r in (ev, fl):
            _assert_conserved(r)


class TestConservationUnderFailures:
    """Crash windows must not leak a single request on either backend —
    completion counts may differ (no retries in fluid), accounting not."""

    def test_exact_conservation_with_drops(self, line_topology):
        placed = PlacedQuorumSystem(
            ThresholdQuorumSystem(5, 3),
            Placement([0, 2, 4, 6, 8]),
            line_topology,
        )
        schedule = FailureSchedule(
            [CrashWindow(4, 1_000.0, 4_000.0),
             CrashWindow(0, 2_000.0, 3_000.0)]
        )
        ev, fl = _run_both(
            placed,
            ThresholdBalancedStrategy(),
            duration_ms=8_000.0,
            warmup_ms=0.0,
            service_time_ms=1.0,
            seed=7,
            failures=schedule,
            timeout_ms=250.0,
            arrivals=PoissonArrivals(rate_per_ms=0.3, seed=8),
        )
        for r in (ev, fl):
            assert r.requests_dropped > 0
            assert r.requests_in_flight >= 0
            _assert_conserved(r)
        # The fluid backend reports abandoned operations as timeouts.
        assert fl.timeouts_total > 0


class TestFluidDeterminism:
    def _run(self, placed, seed):
        sim = GenericQuorumSimulation(
            placed,
            ThresholdBalancedStrategy(),
            service_time_ms=1.0,
            seed=seed,
            arrivals=PoissonArrivals(rate_per_ms=0.5, seed=99),
            backend="fluid",
        )
        return sim.run(duration_ms=3_000.0, warmup_ms=300.0)

    def test_same_seed_is_bit_identical(self, planetlab):
        placed = _threshold_placed(planetlab)
        a, b = self._run(placed, 13), self._run(placed, 13)
        assert a.stats == b.stats
        assert a.requests_issued == b.requests_issued
        assert np.array_equal(a.per_node_request_rate, b.per_node_request_rate)

    def test_seed_changes_the_run(self, planetlab):
        placed = _threshold_placed(planetlab)
        a, b = self._run(placed, 13), self._run(placed, 14)
        assert a.stats.mean_response_ms != b.stats.mean_response_ms

    def test_coalesce_matches_events(self, planetlab):
        """Many-to-one placements coalesce per-node requests; both
        backends must agree on the coalesced load accounting."""
        system = GridQuorumSystem(2)
        sites = np.argsort(planetlab.mean_distances())[:2]
        placed = PlacedQuorumSystem(
            system,
            Placement([int(sites[0]), int(sites[0]),
                       int(sites[1]), int(sites[1])]),
            planetlab,
        )
        ev, fl = _run_both(
            placed,
            ExplicitStrategy.uniform(placed),
            service_time_ms=1.0,
            seed=31,
            arrivals=PoissonArrivals(rate_per_ms=0.4, seed=32),
            coalesce=True,
        )
        assert fl.stats.mean_response_ms == pytest.approx(
            ev.stats.mean_response_ms, rel=0.10
        )
        _assert_conserved(fl)
