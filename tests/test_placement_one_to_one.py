"""Tests for one-to-one placement constructions and the best-v0 search."""

import numpy as np
import pytest

from repro.core.placement import PlacedQuorumSystem
from repro.core.response_time import average_network_delay
from repro.errors import PlacementError
from repro.placement.one_to_one import (
    grid_onion_placement,
    majority_ball_placement,
    one_to_one_placement,
)
from repro.placement.search import best_placement, uniform_strategy_for
from repro.placement.singleton import collapse_to_median, singleton_placement
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.singleton import SingletonQuorumSystem
from repro.quorums.threshold import ThresholdQuorumSystem


class TestMajorityBall:
    def test_support_is_ball(self, line_topology):
        maj = ThresholdQuorumSystem(5, 3)
        placement = majority_ball_placement(line_topology, maj, v0=0)
        assert sorted(placement.assignment) == [0, 1, 2, 3, 4]
        assert placement.is_one_to_one

    def test_interior_ball(self, line_topology):
        maj = ThresholdQuorumSystem(3, 2)
        placement = majority_ball_placement(line_topology, maj, v0=5)
        assert 5 in placement.assignment
        assert len(placement.assignment) == 3

    def test_capacity_filter(self, line_topology):
        # Nodes 1 and 2 too small to host load q/n = 0.6.
        caps = np.ones(10)
        caps[1] = caps[2] = 0.1
        topo = line_topology.with_capacities(caps)
        maj = ThresholdQuorumSystem(5, 3)
        placement = majority_ball_placement(topo, maj, v0=0)
        assert 1 not in placement.assignment
        assert 2 not in placement.assignment

    def test_capacity_filter_disabled(self, line_topology):
        caps = np.full(10, 0.01)
        topo = line_topology.with_capacities(caps)
        maj = ThresholdQuorumSystem(5, 3)
        placement = majority_ball_placement(
            topo, maj, v0=0, respect_capacities=False
        )
        assert sorted(placement.assignment) == [0, 1, 2, 3, 4]

    def test_universe_too_large(self, line_topology):
        maj = ThresholdQuorumSystem(11, 6)
        with pytest.raises(PlacementError):
            majority_ball_placement(line_topology, maj, v0=0)

    def test_wrong_system_type(self, line_topology):
        with pytest.raises(PlacementError):
            majority_ball_placement(
                line_topology, GridQuorumSystem(2), v0=0
            )


class TestGridOnion:
    def test_support_is_ball(self, line_topology):
        grid = GridQuorumSystem(3)
        placement = grid_onion_placement(line_topology, grid, v0=0)
        assert sorted(placement.assignment) == list(range(9))
        assert placement.is_one_to_one

    def test_farthest_node_in_top_left(self, line_topology):
        grid = GridQuorumSystem(3)
        placement = grid_onion_placement(line_topology, grid, v0=0)
        # Ball of 9 around node 0 = nodes 0..8; farthest is node 8.
        assert placement.node_of(grid.element(0, 0)) == 8

    def test_last_row_and_column_are_nearest(self, line_topology):
        grid = GridQuorumSystem(3)
        placement = grid_onion_placement(line_topology, grid, v0=0)
        k = 3
        closing_cells = [grid.element(k - 1, c) for c in range(k)] + [
            grid.element(r, k - 1) for r in range(k - 1)
        ]
        closing_nodes = {placement.node_of(e) for e in closing_cells}
        # The closest quorum (row k-1 + col k-1) holds the 2k-1 nearest.
        assert closing_nodes == {0, 1, 2, 3, 4}

    def test_onion_optimal_for_v0_closest_quorum(self, line_topology):
        """For v0, the onion's closest quorum delay beats (or ties) 200
        random one-to-one placements onto the same ball."""
        grid = GridQuorumSystem(3)
        placement = grid_onion_placement(line_topology, grid, v0=0)
        placed = PlacedQuorumSystem(grid, placement, line_topology)
        onion_delay = placed.delay_matrix[0].min()
        rng = np.random.default_rng(0)
        ball = np.arange(9)
        for _ in range(200):
            perm = rng.permutation(ball)
            other = PlacedQuorumSystem(
                grid,
                type(placement)(perm),
                line_topology,
            )
            assert onion_delay <= other.delay_matrix[0].min() + 1e-9

    def test_wrong_system_type(self, line_topology):
        maj = ThresholdQuorumSystem(3, 2)
        with pytest.raises(PlacementError):
            grid_onion_placement(line_topology, maj, v0=0)


class TestDispatch:
    def test_one_to_one_dispatch(self, line_topology):
        assert one_to_one_placement(
            line_topology, GridQuorumSystem(2), 0
        ).universe_size == 4
        assert one_to_one_placement(
            line_topology, ThresholdQuorumSystem(3, 2), 0
        ).universe_size == 3
        sing = one_to_one_placement(
            line_topology, SingletonQuorumSystem(), 7
        )
        assert sing.node_of(0) == 7


class TestBestPlacementSearch:
    def test_grid_on_clustered_topology_prefers_big_cluster(
        self, clustered_topology
    ):
        grid = GridQuorumSystem(2)
        result = best_placement(clustered_topology, grid)
        # A 4-element grid fits entirely inside one 6-node cluster; any
        # cross-cluster placement pays ~100ms, so support stays clustered.
        support = result.placed.placement.support_set
        assert (support < 6).all() or (support >= 6).all()

    def test_best_delay_is_minimum_over_candidates(self, line_topology):
        maj = ThresholdQuorumSystem(5, 3)
        result = best_placement(line_topology, maj)
        assert result.avg_network_delay == pytest.approx(
            min(result.delays_by_candidate.values())
        )
        assert result.v0 in result.delays_by_candidate

    def test_candidate_subset(self, line_topology):
        maj = ThresholdQuorumSystem(3, 2)
        result = best_placement(line_topology, maj, candidates=[0, 9])
        assert set(result.delays_by_candidate) == {0, 9}

    def test_search_beats_worst_candidate(self, planetlab):
        grid = GridQuorumSystem(3)
        result = best_placement(planetlab, grid)
        worst = max(result.delays_by_candidate.values())
        assert result.avg_network_delay < worst

    def test_reported_delay_matches_reevaluation(self, line_topology):
        grid = GridQuorumSystem(2)
        result = best_placement(line_topology, grid)
        again = average_network_delay(
            result.placed, uniform_strategy_for(result.placed)
        )
        assert result.avg_network_delay == pytest.approx(again)

    def test_empty_candidates_rejected(self, line_topology):
        with pytest.raises(PlacementError):
            best_placement(
                line_topology, GridQuorumSystem(2), candidates=[]
            )


class TestSingletonPlacement:
    def test_singleton_on_median(self, line_topology):
        placed = singleton_placement(line_topology)
        assert placed.placement.node_of(0) == line_topology.median()

    def test_collapse_to_median(self, line_topology):
        grid = GridQuorumSystem(3)
        placed = collapse_to_median(line_topology, grid)
        med = line_topology.median()
        assert np.all(placed.placement.assignment == med)
        # Every quorum collapses to one node: delay = d(v, median).
        assert np.allclose(
            placed.delay_matrix,
            line_topology.rtt[:, [med] * 9],
        )

    def test_singleton_beats_spread_grid(self, planetlab):
        """Lin's bound sanity: the singleton's delay is within 2x of a
        placed Grid's uniform delay (it is usually just better)."""
        from repro.core.strategy import ExplicitStrategy
        from repro.core.response_time import evaluate

        sing = singleton_placement(planetlab)
        sing_delay = evaluate(
            sing, ExplicitStrategy.uniform(sing)
        ).avg_network_delay
        grid_result = best_placement(planetlab, GridQuorumSystem(4))
        assert sing_delay <= 2.0 * grid_result.avg_network_delay
