"""Tests for the bundled Planetlab-50 / daxlist-161 stand-ins."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.datasets import (
    available_topologies,
    daxlist_161,
    load_topology,
    planetlab_50,
    topology_sites,
)


class TestPlanetlab50:
    def test_size(self, planetlab):
        assert planetlab.n_nodes == 50

    def test_deterministic_default(self, planetlab):
        again = planetlab_50()
        assert np.array_equal(planetlab.rtt, again.rtt)

    def test_is_metric(self, planetlab):
        planetlab.validate_metric()

    def test_median_scale_matches_paper(self, planetlab):
        """Average delay to the median ~60-70 ms (Figure 6.3's singleton)."""
        med = planetlab.median()
        avg = planetlab.mean_distances()[med]
        assert 50.0 <= avg <= 80.0

    def test_has_intercontinental_distances(self, planetlab):
        assert planetlab.rtt.max() > 150.0

    def test_alternate_seed_differs(self, planetlab):
        other = planetlab_50(seed=7)
        assert not np.array_equal(planetlab.rtt, other.rtt)


class TestDaxlist161:
    def test_size(self, daxlist):
        assert daxlist.n_nodes == 161

    def test_is_metric(self, daxlist):
        daxlist.validate_metric()

    def test_denser_than_planetlab(self, planetlab, daxlist):
        """Web servers cluster more tightly: smaller median average."""
        p = planetlab.mean_distances()[planetlab.median()]
        d = daxlist.mean_distances()[daxlist.median()]
        assert d < p

    def test_median_scale_matches_paper(self, daxlist):
        """Grid closest delays on daxlist are ~30 ms in Figures 6.4-6.5."""
        avg = daxlist.mean_distances()[daxlist.median()]
        assert 20.0 <= avg <= 45.0


class TestRegistry:
    def test_available(self):
        assert set(available_topologies()) == {
            "planetlab-50",
            "daxlist-161",
            "wan-1000",
            "wan-2000",
            "wan-5000",
        }

    def test_load_by_name(self):
        assert load_topology("planetlab-50").n_nodes == 50
        assert load_topology("daxlist-161").n_nodes == 161

    def test_unknown_name(self):
        with pytest.raises(TopologyError):
            load_topology("nope")

    def test_site_counts_without_generation(self):
        """Site counts are registry data, not generated topologies."""
        assert topology_sites("planetlab-50") == 50
        assert topology_sites("wan-2000") == 2000
        assert topology_sites("wan-5000") == 5000
        with pytest.raises(TopologyError):
            topology_sites("nope")

    def test_wan_preset_loads(self):
        wan = load_topology("wan-1000")
        assert wan.n_nodes == 1000
        assert wan.rtt.max() > 150.0  # intercontinental structure survives
