"""Tests for load computations (Section 4 definitions)."""

import numpy as np
import pytest

from repro.core.load import (
    element_loads,
    node_loads,
    node_loads_for_client,
    node_loads_from_average_strategy,
)
from repro.core.placement import PlacedQuorumSystem, Placement
from repro.errors import StrategyError
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.threshold import ThresholdQuorumSystem


@pytest.fixture()
def grid2_placed(line_topology):
    return PlacedQuorumSystem(
        GridQuorumSystem(2), Placement([0, 1, 2, 3]), line_topology
    )


class TestElementLoads:
    def test_uniform_grid_loads(self, grid2_placed):
        uniform = np.full(4, 0.25)
        loads = element_loads(grid2_placed, uniform)
        # Each 2x2 grid element is in 3 of the 4 quorums.
        assert np.allclose(loads, 0.75)

    def test_point_mass_loads(self, grid2_placed):
        p = np.zeros(4)
        p[0] = 1.0  # quorum (0,0) = {0, 1, 2}
        loads = element_loads(grid2_placed, p)
        assert np.allclose(loads, [1.0, 1.0, 1.0, 0.0])

    def test_wrong_shape_rejected(self, grid2_placed):
        with pytest.raises(StrategyError):
            element_loads(grid2_placed, np.full(3, 1 / 3))


class TestNodeLoads:
    def test_one_to_one_equals_element_loads(self, grid2_placed):
        uniform = np.full(4, 0.25)
        eloads = element_loads(grid2_placed, uniform)
        nloads = node_loads_for_client(grid2_placed, uniform)
        assert np.allclose(nloads[:4], eloads)
        assert np.allclose(nloads[4:], 0.0)

    def test_many_to_one_sums_elements(self, line_topology):
        placed = PlacedQuorumSystem(
            GridQuorumSystem(2), Placement([0, 0, 1, 1]), line_topology
        )
        uniform = np.full(4, 0.25)
        nloads = node_loads_for_client(placed, uniform)
        # Node 0 hosts elements 0,1 (load .75 each) -> 1.5.
        assert nloads[0] == pytest.approx(1.5)
        assert nloads[1] == pytest.approx(1.5)

    def test_coalesced_counts_nodes_once(self, line_topology):
        placed = PlacedQuorumSystem(
            GridQuorumSystem(2), Placement([0, 0, 1, 1]), line_topology
        )
        uniform = np.full(4, 0.25)
        nloads = node_loads_for_client(placed, uniform, coalesce=True)
        # Every quorum touches both nodes exactly once -> load 1 each.
        assert nloads[0] == pytest.approx(1.0)
        assert nloads[1] == pytest.approx(1.0)

    def test_profile_average(self, grid2_placed):
        n_clients = grid2_placed.n_nodes
        profile = np.zeros((n_clients, 4))
        profile[:, 0] = 1.0  # everyone hits quorum 0
        loads = node_loads(grid2_placed, profile)
        assert np.allclose(loads[:4], [1.0, 1.0, 1.0, 0.0])

    def test_average_strategy_equivalence(self, grid2_placed):
        """Global average strategy induces the same node loads as the
        per-client profile (linearity of the load definition)."""
        rng = np.random.default_rng(0)
        profile = rng.dirichlet(np.ones(4), size=grid2_placed.n_nodes)
        via_profile = node_loads(grid2_placed, profile)
        via_average = node_loads_from_average_strategy(
            grid2_placed, profile.mean(axis=0)
        )
        assert np.allclose(via_profile, via_average)

    def test_load_conservation(self, grid2_placed):
        """Total node load equals the expected accessed quorum size."""
        rng = np.random.default_rng(1)
        profile = rng.dirichlet(np.ones(4), size=grid2_placed.n_nodes)
        loads = node_loads(grid2_placed, profile)
        sizes = np.array([len(q) for q in grid2_placed.system.quorums])
        expected = (profile.mean(axis=0) * sizes).sum()
        assert loads.sum() == pytest.approx(expected)

    def test_threshold_uniform_load_is_q_over_n(self, line_topology):
        maj = ThresholdQuorumSystem(5, 3)
        placed = PlacedQuorumSystem(
            maj, Placement([0, 1, 2, 3, 4]), line_topology
        )
        m = maj.num_quorums
        profile = np.full((10, m), 1.0 / m)
        loads = node_loads(placed, profile)
        assert np.allclose(loads[:5], 3 / 5)
