"""Tests for the figure runners (fast grids) and result containers.

Each runner is checked for (a) structural validity of its output and
(b) the paper's qualitative claim that the figure exists to demonstrate.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments import FIGURES, run_figure
from repro.experiments.series import FigureResult, Series
from repro.experiments import fig_6_3, fig_6_4, fig_6_5, fig_7_8, fig_8_9


class TestSeriesContainers:
    def test_series_length_check(self):
        with pytest.raises(ValueError):
            Series("x", (1.0, 2.0), (1.0,))

    def test_from_arrays(self):
        s = Series.from_arrays("a", np.array([1, 2]), np.array([3.0, 4.0]))
        assert s.x == (1.0, 2.0)
        assert s.y == (3.0, 4.0)

    def test_figure_lookup(self):
        fig = FigureResult(
            figure_id="f",
            title="t",
            x_label="x",
            y_label="y",
            series=(Series("a", (1.0,), (2.0,)),),
        )
        assert fig.series_by_label("a").y == (2.0,)
        with pytest.raises(KeyError):
            fig.series_by_label("b")

    def test_render_text_contains_values(self):
        fig = FigureResult(
            figure_id="fig_x",
            title="demo",
            x_label="n",
            y_label="ms",
            series=(Series("curve", (4.0, 9.0), (10.0, 20.0)),),
            metadata={"topology": "test"},
        )
        text = fig.render_text()
        assert "fig_x" in text
        assert "curve" in text
        assert "10.00" in text
        assert "topology: test" in text


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {
            "fig_3_1", "fig_3_2a", "fig_3_2b", "fig_6_3", "fig_6_4",
            "fig_6_5", "fig_7_6", "fig_7_7", "fig_7_8", "fig_8_9",
            "fig_closed_loop", "fig_dyn", "fig_scale", "fig_throughput",
        }
        assert set(FIGURES) == expected

    def test_unknown_figure_rejected(self):
        with pytest.raises(ReproError):
            run_figure("fig_9_9")


#: Figures whose default topology is daxlist-161 rather than planetlab-50.
_DAXLIST_FIGURES = {"fig_6_4", "fig_6_5"}


class TestRegistrySmoke:
    """Every registered figure must run end-to-end in fast mode.

    A broken runner should fail tier-1, not be discovered at benchmark
    time. Each smoke checks the structural contract every consumer
    (render_text, benchmarks, the CLI) relies on.
    """

    @pytest.mark.parametrize("figure_id", sorted(FIGURES))
    def test_figure_runs_fast(self, figure_id, planetlab, daxlist):
        topology = daxlist if figure_id in _DAXLIST_FIGURES else planetlab
        result = run_figure(figure_id, fast=True, topology=topology)
        assert isinstance(result, FigureResult)
        assert result.figure_id == figure_id
        assert result.series, f"{figure_id} produced no series"
        for series in result.series:
            assert len(series.x) == len(series.y) > 0
            assert all(np.isfinite(series.y)), (
                f"{figure_id}/{series.label} has non-finite values"
            )
        assert "==" in result.render_text()


class TestFig63:
    @pytest.fixture(scope="class")
    def result(self, planetlab):
        return fig_6_3.run(planetlab, fast=True)

    def test_structure(self, result):
        labels = {s.label for s in result.series}
        assert "Grid" in labels
        assert "Singleton" in labels
        assert any("(4t+1, 5t+1)" in label for label in labels)

    def test_singleton_is_floor(self, result):
        sing = min(result.series_by_label("Singleton").y)
        for s in result.series:
            if s.label == "Singleton":
                continue
            assert min(s.y) >= sing - 1e-9

    def test_small_quorums_beat_large_at_matched_sizes(self, result):
        """At comparable universe sizes the (t+1,2t+1) Majority should
        not lose to the (4t+1,5t+1) Majority (smaller quorums win)."""
        small = result.series_by_label("Majority (t+1, 2t+1)")
        large = result.series_by_label("Majority (4t+1, 5t+1)")
        for lx, ly in zip(large.x, large.y):
            candidates = [
                sy for sx, sy in zip(small.x, small.y) if sx <= lx
            ]
            if candidates:
                assert min(candidates) <= ly + 1e-9


class TestFig64And65:
    def test_fig64_closest_wins_somewhere_at_low_demand(self, daxlist):
        result = fig_6_4.run(daxlist, fast=True, demands=(1000,))
        closest = result.series_by_label("closest demand=1000")
        balanced = result.series_by_label("balanced demand=1000")
        assert any(c <= b for c, b in zip(closest.y, balanced.y))

    def test_fig65_balanced_disperses_load(self, daxlist):
        result = fig_6_5.run(daxlist, fast=True)
        resp_bal = result.series_by_label("response balanced")
        resp_clo = result.series_by_label("response closest")
        # At the largest universe, balanced should win under demand 16000.
        assert resp_bal.y[-1] < resp_clo.y[-1]

    def test_fig65_balanced_delay_grows_with_universe(self, daxlist):
        result = fig_6_5.run(daxlist, fast=True)
        nd = result.series_by_label("netdelay balanced")
        assert nd.y[-1] > nd.y[0]


class TestFig78:
    @pytest.fixture(scope="class")
    def result(self, planetlab):
        return fig_7_8.run(planetlab, fast=True)

    def test_network_delay_nonincreasing(self, result):
        nd = result.series_by_label("network delay")
        assert all(a >= b - 1e-6 for a, b in zip(nd.y, nd.y[1:]))

    def test_response_rises_with_capacity_at_high_demand(self, result):
        uniform = result.series_by_label("response uniform")
        assert uniform.y[-1] >= uniform.y[0]

    def test_nonuniform_never_much_worse(self, result):
        uniform = result.series_by_label("response uniform")
        nonuni = result.series_by_label("response nonuniform")
        for u, n in zip(uniform.y, nonuni.y):
            assert n <= u * 1.01 + 0.5
        assert sum(nonuni.y) <= sum(uniform.y) + 1e-6


class TestRunFigureRunnerConflicts:
    """run_figure(runner=) used to silently ignore jobs=/cache= (the
    ROADMAP open item); now jobs conflicts raise and cache attaches."""

    def test_jobs_with_runner_raises(self, planetlab):
        from repro.runtime.runner import GridRunner

        with GridRunner() as runner:
            with pytest.raises(ReproError, match="jobs"):
                run_figure(
                    "fig_dyn", fast=True, topology=planetlab,
                    jobs=4, runner=runner,
                )

    def test_explicit_runner_none_is_not_a_conflict(self, planetlab):
        """Callers that conditionally thread a runner pass runner=None;
        that must behave exactly like omitting it (jobs/cache honored)."""
        result = run_figure(
            "fig_dyn", fast=True, topology=planetlab, runner=None, jobs=1
        )
        assert result.figure_id == "fig_dyn"

    def test_conflicting_caches_raise(self, planetlab, tmp_path):
        from repro.runtime.cache import ResultCache
        from repro.runtime.runner import GridRunner

        runner_cache = ResultCache(tmp_path / "a")
        call_cache = ResultCache(tmp_path / "b")
        with GridRunner(cache=runner_cache) as runner:
            with pytest.raises(ReproError, match="cache"):
                run_figure(
                    "fig_dyn", fast=True, topology=planetlab,
                    cache=call_cache, runner=runner,
                )

    def test_cache_attached_to_provided_runner(self, planetlab, tmp_path):
        from repro.runtime.cache import ResultCache
        from repro.runtime.runner import GridRunner

        cache = ResultCache(tmp_path / "figures")
        with GridRunner() as runner:
            first = run_figure(
                "fig_dyn", fast=True, topology=planetlab,
                cache=cache, runner=runner,
            )
            assert runner.cache is None  # detached after the call
            assert cache.stores > 0  # the cache was actually consulted
            second = run_figure(
                "fig_dyn", fast=True, topology=planetlab,
                cache=cache, runner=runner,
            )
        assert cache.hits > 0
        for a, b in zip(first.series, second.series):
            assert a == b


class TestFigDyn:
    @pytest.fixture(scope="class")
    def result(self, planetlab):
        from repro.experiments import fig_dyn

        return fig_dyn.run(planetlab, fast=True)

    def test_clairvoyant_is_the_floor(self, result):
        clair = np.asarray(result.series_by_label("clairvoyant").y)
        for series in result.series:
            if series.label == "clairvoyant":
                continue
            assert np.all(np.asarray(series.y) >= clair - 1e-9)

    def test_static_pays_the_most_regret(self, result):
        regrets = result.metadata["mean_regret_ms"]
        assert regrets["static"] >= max(
            v for k, v in regrets.items() if k != "static"
        ) - 1e-9

    def test_adaptive_policies_cost_more_reopts(self, result):
        reopts = result.metadata["reopts"]
        assert reopts["clairvoyant"] >= reopts["threshold:0.05"]
        assert reopts["threshold:0.05"] >= reopts["static"]


class TestFig89:
    @pytest.fixture(scope="class")
    def result(self, planetlab):
        return fig_8_9.run(planetlab, fast=True)

    def test_iterative_beats_one_to_one(self, result):
        iter1 = result.series_by_label("netdelay 1st iteration")
        o2o = result.series_by_label("netdelay one-to-one")
        for i1, oo in zip(iter1.y, o2o.y):
            assert i1 < oo

    def test_second_iteration_close_to_first(self, result):
        """The paper: iteration 2 brings only small changes."""
        iter1 = result.series_by_label("netdelay 1st iteration")
        iter2 = result.series_by_label("netdelay 2nd iteration")
        for a, b in zip(iter1.y, iter2.y):
            assert abs(a - b) < 10.0
