"""Tests for failure injection in the generic simulator."""

import numpy as np
import pytest

from repro.core.placement import PlacedQuorumSystem, Placement
from repro.core.strategy import ExplicitStrategy, ThresholdBalancedStrategy
from repro.errors import SimulationError
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.threshold import ThresholdQuorumSystem
from repro.sim.failures import CrashWindow, FailureSchedule
from repro.sim.generic import GenericQuorumSimulation


@pytest.fixture()
def maj_placed(line_topology):
    return PlacedQuorumSystem(
        ThresholdQuorumSystem(5, 3),
        Placement([0, 2, 4, 6, 8]),
        line_topology,
    )


class TestFailureSchedule:
    def test_window_membership(self):
        schedule = FailureSchedule()
        schedule.add(node=3, start_ms=100.0, end_ms=200.0)
        assert not schedule.is_down(3, 99.9)
        assert schedule.is_down(3, 100.0)
        assert schedule.is_down(3, 199.9)
        assert not schedule.is_down(3, 200.0)
        assert not schedule.is_down(4, 150.0)

    def test_multiple_windows(self):
        schedule = FailureSchedule(
            [CrashWindow(1, 0.0, 10.0), CrashWindow(1, 50.0, 60.0)]
        )
        assert schedule.is_down(1, 5.0)
        assert not schedule.is_down(1, 30.0)
        assert schedule.is_down(1, 55.0)

    def test_downtime_accounting(self):
        schedule = FailureSchedule()
        schedule.add(2, 0.0, 100.0)
        schedule.add(2, 500.0, 700.0)
        assert schedule.downtime(2, until_ms=1000.0) == pytest.approx(300.0)
        assert schedule.downtime(2, until_ms=600.0) == pytest.approx(200.0)

    def test_invalid_window(self):
        with pytest.raises(SimulationError):
            CrashWindow(0, 10.0, 10.0)
        with pytest.raises(SimulationError):
            CrashWindow(0, -1.0, 5.0)


class TestCanonicalMerge:
    """Overlapping/duplicate windows per node collapse into one maximal
    interval, so schedules composed from several sources behave as the
    union of their downtime."""

    def test_duplicates_collapse(self):
        schedule = FailureSchedule(
            [CrashWindow(1, 10.0, 20.0), CrashWindow(1, 10.0, 20.0)]
        )
        assert schedule.windows == (CrashWindow(1, 10.0, 20.0),)
        assert schedule.downtime(1, 100.0) == pytest.approx(10.0)

    def test_overlap_merges_and_downtime_not_double_counted(self):
        schedule = FailureSchedule()
        schedule.add(2, 0.0, 100.0)
        schedule.add(2, 50.0, 150.0)  # overlaps the first window
        assert schedule.windows == (CrashWindow(2, 0.0, 150.0),)
        assert schedule.downtime(2, 1000.0) == pytest.approx(150.0)

    def test_adjacent_windows_coalesce(self):
        """[a, b) + [b, c) is one outage — the node never actually came
        back up at b, so no recovery/crash double-toggle can occur there."""
        schedule = FailureSchedule(
            [CrashWindow(0, 0.0, 50.0), CrashWindow(0, 50.0, 80.0)]
        )
        assert schedule.windows == (CrashWindow(0, 0.0, 80.0),)
        assert schedule.is_down(0, 50.0)

    def test_bridging_window_swallows_neighbors(self):
        schedule = FailureSchedule(
            [CrashWindow(3, 0.0, 10.0), CrashWindow(3, 20.0, 30.0)]
        )
        schedule.add(3, 5.0, 25.0)
        assert schedule.windows == (CrashWindow(3, 0.0, 30.0),)

    def test_distinct_nodes_and_gaps_stay_separate(self):
        schedule = FailureSchedule(
            [
                CrashWindow(1, 0.0, 10.0),
                CrashWindow(2, 0.0, 10.0),
                CrashWindow(1, 50.0, 60.0),
            ]
        )
        assert schedule.windows == (
            CrashWindow(1, 0.0, 10.0),
            CrashWindow(1, 50.0, 60.0),
            CrashWindow(2, 0.0, 10.0),
        )
        assert not schedule.is_down(1, 30.0)


class TestFailureInjection:
    def test_requires_timeout(self, maj_placed):
        schedule = FailureSchedule([CrashWindow(0, 0.0, 100.0)])
        with pytest.raises(SimulationError):
            GenericQuorumSimulation(
                maj_placed,
                ThresholdBalancedStrategy(),
                failures=schedule,
                timeout_ms=0.0,
            )

    def test_progress_through_crash(self, maj_placed):
        """Balanced clients keep completing operations while a support
        node is down (resampling avoids it)."""
        schedule = FailureSchedule([CrashWindow(4, 500.0, 2500.0)])
        sim = GenericQuorumSimulation(
            maj_placed,
            ThresholdBalancedStrategy(),
            client_nodes=np.array([0, 5, 9]),
            service_time_ms=0.0,
            failures=schedule,
            timeout_ms=250.0,
            seed=21,
        )
        result = sim.run(duration_ms=4000.0, warmup_ms=0.0)
        assert result.operations_completed > 0
        assert result.timeouts_total > 0
        assert result.requests_dropped > 0
        # Completions happen during the outage window too, not just
        # before/after (check a record inside the window).
        inside = [
            r
            for c in sim.clients
            for r in c.records
            if 700.0 < r.completed_at_ms < 2400.0
        ]
        assert inside

    def test_no_failures_no_timeouts(self, maj_placed):
        sim = GenericQuorumSimulation(
            maj_placed,
            ThresholdBalancedStrategy(),
            client_nodes=np.array([0]),
            service_time_ms=0.0,
            timeout_ms=10_000.0,
            seed=2,
        )
        result = sim.run(duration_ms=2000.0)
        assert result.timeouts_total == 0
        assert result.requests_dropped == 0

    def test_crash_inflates_response_time(self, maj_placed):
        def mean_response(schedule):
            sim = GenericQuorumSimulation(
                maj_placed,
                ThresholdBalancedStrategy(),
                client_nodes=np.array([0, 5]),
                service_time_ms=0.0,
                failures=schedule,
                timeout_ms=300.0,
                seed=7,
            )
            return sim.run(duration_ms=5000.0).stats.mean_response_ms

        healthy = mean_response(None)
        degraded = mean_response(
            FailureSchedule([CrashWindow(4, 0.0, 5000.0)])
        )
        assert degraded > healthy

    def test_deterministic_closest_strategy_stalls_on_its_quorum(
        self, line_topology
    ):
        """A closest-strategy client whose fixed quorum includes the dead
        node times out repeatedly until recovery — the brittleness that
        motivates strategy diversity under failures."""
        placed = PlacedQuorumSystem(
            GridQuorumSystem(2), Placement([0, 1, 2, 3]), line_topology
        )
        strategy = ExplicitStrategy.closest(placed)
        # Client 0's closest quorum necessarily includes some of nodes
        # 0-3; crash all of node 0 for the first half of the run.
        schedule = FailureSchedule([CrashWindow(0, 0.0, 2000.0)])
        sim = GenericQuorumSimulation(
            placed,
            strategy,
            client_nodes=np.array([0]),
            service_time_ms=0.0,
            failures=schedule,
            timeout_ms=200.0,
            seed=3,
        )
        result = sim.run(duration_ms=4000.0)
        # The fixed quorum contains node 0, so the first 2000 ms are all
        # timeouts; completions resume after recovery.
        assert result.timeouts_total >= 9
        completions = [
            r.completed_at_ms for r in sim.clients[0].records
        ]
        assert completions and min(completions) >= 2000.0

    def test_grid_explicit_strategy_with_failures(self, line_topology):
        """Balanced grid clients route around a single dead node."""
        placed = PlacedQuorumSystem(
            GridQuorumSystem(2), Placement([0, 1, 2, 3]), line_topology
        )
        strategy = ExplicitStrategy.uniform(placed)
        schedule = FailureSchedule([CrashWindow(3, 0.0, 10_000.0)])
        sim = GenericQuorumSimulation(
            placed,
            strategy,
            client_nodes=np.array([5]),
            service_time_ms=0.0,
            failures=schedule,
            timeout_ms=150.0,
            seed=4,
        )
        result = sim.run(duration_ms=6000.0)
        # Quorum (0,0) = elements {0,1,2} avoids node 3 entirely; uniform
        # sampling hits it 1/4 of the time, so progress continues.
        assert result.operations_completed > 0
