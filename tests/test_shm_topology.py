"""Tests for the shared-memory topology transport.

The contract under test: publishing a topology and resolving the handle —
in the publisher or in a worker — yields the publisher's exact bytes, the
per-point payload shrinks from O(n^2) to O(1), and every fallback path
(no shm, ``REPRO_NO_SHM``, serial runners) degrades to shipping the
topology itself with identical results.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.datasets import PLANETLAB_CLUSTERS
from repro.network.generators import generate_cluster_topology
from repro.network.graph import Topology
from repro.placement.search import best_placement
from repro.quorums.grid import GridQuorumSystem
from repro.runtime.cache import topology_fingerprint
from repro.runtime.runner import GridRunner
from repro.runtime.shm import (
    SHM_DISABLE_ENV,
    TopologyBroker,
    TopologyHandle,
    resolve_topology,
    shm_available,
)


@pytest.fixture(scope="module")
def topo():
    return generate_cluster_topology(
        n_sites=30, clusters=PLANETLAB_CLUSTERS, seed=11
    )


class TestAdopt:
    def test_wraps_without_copy(self, topo):
        rtt = topo.rtt.copy()
        rtt.setflags(write=False)
        adopted = Topology.adopt(rtt, topo.names, topo.capacities)
        assert adopted.rtt is rtt
        assert np.array_equal(adopted.rtt, topo.rtt)
        assert adopted.names == topo.names

    def test_rejects_wrong_dtype(self, topo):
        with pytest.raises(TopologyError):
            Topology.adopt(
                topo.rtt.astype(np.float32), topo.names, topo.capacities
            )

    def test_rejects_shape_mismatch(self, topo):
        with pytest.raises(TopologyError):
            Topology.adopt(
                topo.rtt[:, :-1].copy(), topo.names, topo.capacities
            )
        with pytest.raises(TopologyError):
            Topology.adopt(topo.rtt, topo.names[:-1], topo.capacities)


class TestBroker:
    def test_roundtrip_is_bit_identical(self, topo):
        if not shm_available():
            pytest.skip("no shared memory on this platform")
        with TopologyBroker() as broker:
            handle = broker.publish(topo)
            assert isinstance(handle, TopologyHandle)
            # The publisher resolves its own handle to the original object.
            assert resolve_topology(handle) is topo
            # A cold attach (what a worker does) sees the exact bytes.
            from repro.runtime import shm

            shm._PUBLISHED.pop(handle.fingerprint, None)
            try:
                block, rebuilt = shm._attach(handle)
                try:
                    assert np.array_equal(rebuilt.rtt, topo.rtt)
                    assert rebuilt.names == topo.names
                    assert np.array_equal(
                        rebuilt.capacities, topo.capacities
                    )
                    # Zero-copy: the matrix aliases the block's buffer.
                    assert not rebuilt.rtt.flags.owndata
                    assert not rebuilt.rtt.flags.writeable
                finally:
                    del rebuilt
                    block.close()
            finally:
                shm._PUBLISHED[handle.fingerprint] = topo

    def test_handle_is_small_and_size_independent(self, topo):
        if not shm_available():
            pytest.skip("no shared memory on this platform")
        with TopologyBroker() as broker:
            handle = broker.publish(topo)
            payload = len(pickle.dumps(handle))
            matrix = len(pickle.dumps(topo))
            assert payload < 512
            assert payload < matrix / 10

    def test_publish_is_idempotent_per_content(self, topo):
        if not shm_available():
            pytest.skip("no shared memory on this platform")
        with TopologyBroker() as broker:
            first = broker.publish(topo)
            second = broker.publish(topo)
            assert first is second
            assert broker.published == (topology_fingerprint(topo),)

    def test_disable_env_forces_fallback(self, topo, monkeypatch):
        monkeypatch.setenv(SHM_DISABLE_ENV, "1")
        assert not shm_available()
        with TopologyBroker() as broker:
            assert broker.publish(topo) is topo

    def test_close_unlinks(self, topo):
        if not shm_available():
            pytest.skip("no shared memory on this platform")
        broker = TopologyBroker()
        handle = broker.publish(topo)
        broker.close()
        assert broker.published == ()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.shm_name)


class TestResolve:
    def test_topology_passes_through(self, topo):
        assert resolve_topology(topo) is topo

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_topology("not a topology")


class TestRunnerIntegration:
    def test_serial_runner_ships_topology_itself(self, topo):
        with GridRunner(jobs=1) as runner:
            assert runner.ship(topo) is topo

    def test_parallel_runner_ships_handle(self, topo):
        if not shm_available():
            pytest.skip("no shared memory on this platform")
        with GridRunner(jobs=2) as runner:
            shipped = runner.ship(topo)
            assert isinstance(shipped, TopologyHandle)

    def test_search_identical_through_workers(self, topo):
        """jobs=2 fans candidates out with handles; results must match
        the serial search on the original object exactly."""
        system = GridQuorumSystem(3)
        serial = best_placement(topo, system)
        parallel = best_placement(topo, system, jobs=2)
        assert serial.v0 == parallel.v0
        assert serial.avg_network_delay == parallel.avg_network_delay
        assert serial.delays_by_candidate == parallel.delays_by_candidate

    def test_search_identical_with_shm_disabled(self, topo, monkeypatch):
        """The pickle fallback is slower, never different."""
        system = GridQuorumSystem(3)
        baseline = best_placement(topo, system)
        monkeypatch.setenv(SHM_DISABLE_ENV, "1")
        fallback = best_placement(topo, system, jobs=2)
        assert baseline.v0 == fallback.v0
        assert baseline.delays_by_candidate == fallback.delays_by_candidate
