"""Tests for quorum-system definitions: thresholds, Grid, singleton, weighted."""

import itertools
from math import comb

import pytest

from repro.errors import QuorumSystemError
from repro.quorums.base import EnumeratedQuorumSystem
from repro.quorums.grid import GridQuorumSystem
from repro.quorums.singleton import SingletonQuorumSystem
from repro.quorums.threshold import (
    MajorityKind,
    ThresholdQuorumSystem,
    majority,
    majority_universe_sizes,
)
from repro.quorums.weighted import WeightedMajorityQuorumSystem


class TestEnumeratedBase:
    def test_valid_system(self):
        qs = EnumeratedQuorumSystem(
            [frozenset({0, 1}), frozenset({1, 2})], name="pair"
        )
        assert qs.universe_size == 3
        assert qs.num_quorums == 2
        assert qs.min_quorum_size == 2

    def test_disjoint_quorums_rejected(self):
        with pytest.raises(QuorumSystemError):
            EnumeratedQuorumSystem([frozenset({0}), frozenset({1})])

    def test_empty_quorum_rejected(self):
        with pytest.raises(QuorumSystemError):
            EnumeratedQuorumSystem([frozenset()])

    def test_no_quorums_rejected(self):
        with pytest.raises(QuorumSystemError):
            EnumeratedQuorumSystem([])

    def test_element_beyond_universe_rejected(self):
        with pytest.raises(QuorumSystemError):
            EnumeratedQuorumSystem([frozenset({0, 5})], universe_size=3)

    def test_membership_counts(self):
        qs = EnumeratedQuorumSystem(
            [frozenset({0, 1}), frozenset({1, 2})], name="pair"
        )
        assert qs.element_membership_counts() == [1, 2, 1]


class TestThreshold:
    def test_intersection_condition_enforced(self):
        with pytest.raises(QuorumSystemError):
            ThresholdQuorumSystem(universe_size=4, quorum_size=2)

    def test_valid_majority(self):
        qs = ThresholdQuorumSystem(5, 3)
        assert qs.num_quorums == comb(5, 3)
        assert qs.min_quorum_size == 3
        assert qs.fault_tolerance == 2

    def test_enumeration_matches_combinations(self):
        qs = ThresholdQuorumSystem(5, 3)
        expected = {
            frozenset(c) for c in itertools.combinations(range(5), 3)
        }
        assert set(qs.quorums) == expected

    def test_all_pairs_intersect(self):
        qs = ThresholdQuorumSystem(6, 4)
        for a, b in itertools.combinations(qs.quorums, 2):
            assert a & b

    def test_large_threshold_not_enumerable(self):
        qs = ThresholdQuorumSystem(49, 25)
        assert not qs.is_enumerable
        with pytest.raises(QuorumSystemError):
            _ = qs.quorums

    def test_quorum_size_bounds(self):
        with pytest.raises(QuorumSystemError):
            ThresholdQuorumSystem(5, 0)
        with pytest.raises(QuorumSystemError):
            ThresholdQuorumSystem(5, 6)
        with pytest.raises(QuorumSystemError):
            ThresholdQuorumSystem(0, 1)


class TestMajorityFamilies:
    @pytest.mark.parametrize(
        "kind,t,n,q",
        [
            (MajorityKind.SIMPLE, 1, 3, 2),
            (MajorityKind.SIMPLE, 4, 9, 5),
            (MajorityKind.BFT, 1, 4, 3),
            (MajorityKind.BFT, 3, 10, 7),
            (MajorityKind.QU, 1, 6, 5),
            (MajorityKind.QU, 5, 26, 21),
        ],
    )
    def test_family_parameters(self, kind, t, n, q):
        qs = majority(kind, t)
        assert qs.universe_size == n
        assert qs.quorum_size == q

    def test_accepts_string_kind(self):
        qs = majority("(2t+1, 3t+1)", 2)
        assert qs.universe_size == 7

    def test_invalid_t(self):
        with pytest.raises(QuorumSystemError):
            majority(MajorityKind.SIMPLE, 0)

    def test_universe_sizes_sweep(self):
        sizes = majority_universe_sizes(MajorityKind.SIMPLE, 49)
        assert sizes == [3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27,
                         29, 31, 33, 35, 37, 39, 41, 43, 45, 47, 49]

    def test_universe_sizes_qu(self):
        assert majority_universe_sizes(MajorityKind.QU, 49) == [
            6, 11, 16, 21, 26, 31, 36, 41, 46,
        ]


class TestGrid:
    def test_basic_shape(self):
        g = GridQuorumSystem(3)
        assert g.universe_size == 9
        assert g.num_quorums == 9
        assert g.min_quorum_size == 5

    def test_quorum_is_row_plus_column(self):
        g = GridQuorumSystem(3)
        q = g.quorum_for(1, 2)
        rows = {g.element(1, c) for c in range(3)}
        cols = {g.element(r, 2) for r in range(3)}
        assert q == frozenset(rows | cols)

    def test_all_pairs_intersect(self):
        g = GridQuorumSystem(4)
        for a, b in itertools.combinations(g.quorums, 2):
            assert a & b

    def test_element_cell_round_trip(self):
        g = GridQuorumSystem(5)
        for e in range(25):
            r, c = g.cell(e)
            assert g.element(r, c) == e

    def test_uniform_load_formula(self):
        g = GridQuorumSystem(4)
        assert g.uniform_load == pytest.approx(7 / 16)

    def test_k1_degenerates_to_singletonish(self):
        g = GridQuorumSystem(1)
        assert g.quorums == (frozenset({0}),)

    def test_out_of_range_cell(self):
        g = GridQuorumSystem(2)
        with pytest.raises(QuorumSystemError):
            g.element(2, 0)
        with pytest.raises(QuorumSystemError):
            g.cell(4)
        with pytest.raises(QuorumSystemError):
            g.quorum_for(0, 2)

    def test_invalid_k(self):
        with pytest.raises(QuorumSystemError):
            GridQuorumSystem(0)


class TestSingleton:
    def test_shape(self):
        s = SingletonQuorumSystem()
        assert s.universe_size == 1
        assert s.quorums == (frozenset({0}),)
        assert s.min_quorum_size == 1
        s.validate()


class TestWeightedMajority:
    def test_equal_weights_is_majority(self):
        w = WeightedMajorityQuorumSystem([1, 1, 1])
        assert set(w.quorums) == {
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({1, 2}),
        }

    def test_dictator_weight(self):
        w = WeightedMajorityQuorumSystem([5, 1, 1, 1])
        # Element 0 holds 5 of 8 votes: {0} alone is a quorum and minimal.
        assert frozenset({0}) in w.quorums
        # Every quorum must include 0 (the rest sum to 3 < 4.x threshold).
        assert all(0 in q for q in w.quorums)

    def test_quorums_are_minimal(self):
        w = WeightedMajorityQuorumSystem([3, 2, 2, 1])
        for a, b in itertools.permutations(w.quorums, 2):
            assert not a < b

    def test_all_pairs_intersect(self):
        w = WeightedMajorityQuorumSystem([3, 2, 2, 1, 1])
        for a, b in itertools.combinations(w.quorums, 2):
            assert a & b

    def test_validation_errors(self):
        with pytest.raises(QuorumSystemError):
            WeightedMajorityQuorumSystem([])
        with pytest.raises(QuorumSystemError):
            WeightedMajorityQuorumSystem([0, 1])
        with pytest.raises(QuorumSystemError):
            WeightedMajorityQuorumSystem([1] * 30)
