"""Tests for synthetic topology generation and geographic helpers."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.generators import ClusterSpec, generate_cluster_topology
from repro.network.geo import (
    EARTH_RADIUS_KM,
    great_circle_km,
    pairwise_great_circle_km,
    propagation_rtt_ms,
)


TWO_CLUSTERS = [
    ClusterSpec("east", 40.0, -74.0, 1.0, 0.5),
    ClusterSpec("west", 37.0, -122.0, 1.0, 0.5),
]


class TestGeo:
    def test_zero_distance(self):
        assert great_circle_km(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_symmetric(self):
        a = great_circle_km(40.0, -74.0, 51.5, 0.0)
        b = great_circle_km(51.5, 0.0, 40.0, -74.0)
        assert a == pytest.approx(b)

    def test_antipodal_half_circumference(self):
        d = great_circle_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_known_distance_ny_london(self):
        # New York <-> London is about 5570 km.
        d = great_circle_km(40.71, -74.0, 51.5, -0.13)
        assert 5300 < d < 5800

    def test_pairwise_matches_scalar(self):
        lats = np.array([40.0, 51.5, -33.9])
        lons = np.array([-74.0, 0.0, 151.2])
        matrix = pairwise_great_circle_km(lats, lons)
        for i in range(3):
            for j in range(3):
                expected = great_circle_km(
                    lats[i], lons[i], lats[j], lons[j]
                )
                assert matrix[i, j] == pytest.approx(expected, rel=1e-9)

    def test_propagation_rtt(self):
        # 1000 km geodesic -> 2 * 1000/200 = 10 ms RTT.
        assert propagation_rtt_ms(1000.0) == pytest.approx(10.0)


class TestClusterSpec:
    def test_invalid_latitude(self):
        with pytest.raises(TopologyError):
            ClusterSpec("x", 91.0, 0.0, 1.0, 1.0)

    def test_invalid_longitude(self):
        with pytest.raises(TopologyError):
            ClusterSpec("x", 0.0, 200.0, 1.0, 1.0)

    def test_negative_spread(self):
        with pytest.raises(TopologyError):
            ClusterSpec("x", 0.0, 0.0, -1.0, 1.0)

    def test_nonpositive_weight(self):
        with pytest.raises(TopologyError):
            ClusterSpec("x", 0.0, 0.0, 1.0, 0.0)


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = generate_cluster_topology(20, TWO_CLUSTERS, seed=5)
        b = generate_cluster_topology(20, TWO_CLUSTERS, seed=5)
        assert np.array_equal(a.rtt, b.rtt)
        assert a.names == b.names

    def test_different_seeds_differ(self):
        a = generate_cluster_topology(20, TWO_CLUSTERS, seed=5)
        b = generate_cluster_topology(20, TWO_CLUSTERS, seed=6)
        assert not np.array_equal(a.rtt, b.rtt)

    def test_site_count(self):
        topo = generate_cluster_topology(33, TWO_CLUSTERS, seed=1)
        assert topo.n_nodes == 33

    def test_names_encode_clusters(self):
        topo = generate_cluster_topology(10, TWO_CLUSTERS, seed=1)
        assert any(name.startswith("east-") for name in topo.names)
        assert any(name.startswith("west-") for name in topo.names)

    def test_metric_property_holds(self):
        topo = generate_cluster_topology(25, TWO_CLUSTERS, seed=2)
        topo.validate_metric()

    def test_intercluster_far_exceeds_intracluster(self):
        topo = generate_cluster_topology(30, TWO_CLUSTERS, seed=3)
        east = [i for i, n in enumerate(topo.names) if n.startswith("east")]
        west = [i for i, n in enumerate(topo.names) if n.startswith("west")]
        intra = topo.rtt[np.ix_(east, east)]
        inter = topo.rtt[np.ix_(east, west)]
        intra_mean = intra[intra > 0].mean()
        assert inter.mean() > 3 * intra_mean

    def test_every_cluster_gets_a_site(self):
        clusters = [
            ClusterSpec("big", 0.0, 0.0, 1.0, 100.0),
            ClusterSpec("tiny", 50.0, 50.0, 1.0, 0.001),
        ]
        topo = generate_cluster_topology(10, clusters, seed=4)
        assert any(n.startswith("tiny-") for n in topo.names)

    def test_min_rtt_clamp(self):
        topo = generate_cluster_topology(
            15,
            [ClusterSpec("one", 0.0, 0.0, 0.0, 1.0)],
            seed=9,
            jitter_ms=0.0,
            access_delay_ms_range=(0.0, 0.0),
            min_rtt_ms=2.5,
        )
        off_diag = topo.rtt[~np.eye(15, dtype=bool)]
        assert off_diag.min() >= 2.5 - 1e-9

    def test_bad_inflation_rejected(self):
        with pytest.raises(TopologyError):
            generate_cluster_topology(
                5, TWO_CLUSTERS, seed=1, inflation_range=(0.5, 2.0)
            )

    def test_bad_access_range_rejected(self):
        with pytest.raises(TopologyError):
            generate_cluster_topology(
                5, TWO_CLUSTERS, seed=1, access_delay_ms_range=(2.0, 1.0)
            )

    def test_no_clusters_rejected(self):
        with pytest.raises(TopologyError):
            generate_cluster_topology(5, [], seed=1)

    def test_zero_sites_rejected(self):
        with pytest.raises(TopologyError):
            generate_cluster_topology(0, TWO_CLUSTERS, seed=1)
