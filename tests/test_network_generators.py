"""Tests for synthetic topology generation and geographic helpers."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.generators import (
    WAN_CLUSTERS,
    ClusterSpec,
    _allocate_sites,
    generate_cluster_topology,
    synthetic_wan,
)
from repro.network.geo import (
    EARTH_RADIUS_KM,
    great_circle_km,
    pairwise_great_circle_km,
    propagation_rtt_ms,
)


TWO_CLUSTERS = [
    ClusterSpec("east", 40.0, -74.0, 1.0, 0.5),
    ClusterSpec("west", 37.0, -122.0, 1.0, 0.5),
]


class TestGeo:
    def test_zero_distance(self):
        assert great_circle_km(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_symmetric(self):
        a = great_circle_km(40.0, -74.0, 51.5, 0.0)
        b = great_circle_km(51.5, 0.0, 40.0, -74.0)
        assert a == pytest.approx(b)

    def test_antipodal_half_circumference(self):
        d = great_circle_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_known_distance_ny_london(self):
        # New York <-> London is about 5570 km.
        d = great_circle_km(40.71, -74.0, 51.5, -0.13)
        assert 5300 < d < 5800

    def test_pairwise_matches_scalar(self):
        lats = np.array([40.0, 51.5, -33.9])
        lons = np.array([-74.0, 0.0, 151.2])
        matrix = pairwise_great_circle_km(lats, lons)
        for i in range(3):
            for j in range(3):
                expected = great_circle_km(
                    lats[i], lons[i], lats[j], lons[j]
                )
                assert matrix[i, j] == pytest.approx(expected, rel=1e-9)

    def test_propagation_rtt(self):
        # 1000 km geodesic -> 2 * 1000/200 = 10 ms RTT.
        assert propagation_rtt_ms(1000.0) == pytest.approx(10.0)


class TestClusterSpec:
    def test_invalid_latitude(self):
        with pytest.raises(TopologyError):
            ClusterSpec("x", 91.0, 0.0, 1.0, 1.0)

    def test_invalid_longitude(self):
        with pytest.raises(TopologyError):
            ClusterSpec("x", 0.0, 200.0, 1.0, 1.0)

    def test_negative_spread(self):
        with pytest.raises(TopologyError):
            ClusterSpec("x", 0.0, 0.0, -1.0, 1.0)

    def test_nonpositive_weight(self):
        with pytest.raises(TopologyError):
            ClusterSpec("x", 0.0, 0.0, 1.0, 0.0)


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = generate_cluster_topology(20, TWO_CLUSTERS, seed=5)
        b = generate_cluster_topology(20, TWO_CLUSTERS, seed=5)
        assert np.array_equal(a.rtt, b.rtt)
        assert a.names == b.names

    def test_different_seeds_differ(self):
        a = generate_cluster_topology(20, TWO_CLUSTERS, seed=5)
        b = generate_cluster_topology(20, TWO_CLUSTERS, seed=6)
        assert not np.array_equal(a.rtt, b.rtt)

    def test_site_count(self):
        topo = generate_cluster_topology(33, TWO_CLUSTERS, seed=1)
        assert topo.n_nodes == 33

    def test_names_encode_clusters(self):
        topo = generate_cluster_topology(10, TWO_CLUSTERS, seed=1)
        assert any(name.startswith("east-") for name in topo.names)
        assert any(name.startswith("west-") for name in topo.names)

    def test_metric_property_holds(self):
        topo = generate_cluster_topology(25, TWO_CLUSTERS, seed=2)
        topo.validate_metric()

    def test_intercluster_far_exceeds_intracluster(self):
        topo = generate_cluster_topology(30, TWO_CLUSTERS, seed=3)
        east = [i for i, n in enumerate(topo.names) if n.startswith("east")]
        west = [i for i, n in enumerate(topo.names) if n.startswith("west")]
        intra = topo.rtt[np.ix_(east, east)]
        inter = topo.rtt[np.ix_(east, west)]
        intra_mean = intra[intra > 0].mean()
        assert inter.mean() > 3 * intra_mean

    def test_every_cluster_gets_a_site(self):
        clusters = [
            ClusterSpec("big", 0.0, 0.0, 1.0, 100.0),
            ClusterSpec("tiny", 50.0, 50.0, 1.0, 0.001),
        ]
        topo = generate_cluster_topology(10, clusters, seed=4)
        assert any(n.startswith("tiny-") for n in topo.names)

    def test_min_rtt_clamp(self):
        topo = generate_cluster_topology(
            15,
            [ClusterSpec("one", 0.0, 0.0, 0.0, 1.0)],
            seed=9,
            jitter_ms=0.0,
            access_delay_ms_range=(0.0, 0.0),
            min_rtt_ms=2.5,
        )
        off_diag = topo.rtt[~np.eye(15, dtype=bool)]
        assert off_diag.min() >= 2.5 - 1e-9

    def test_bad_inflation_rejected(self):
        with pytest.raises(TopologyError):
            generate_cluster_topology(
                5, TWO_CLUSTERS, seed=1, inflation_range=(0.5, 2.0)
            )

    def test_bad_access_range_rejected(self):
        with pytest.raises(TopologyError):
            generate_cluster_topology(
                5, TWO_CLUSTERS, seed=1, access_delay_ms_range=(2.0, 1.0)
            )

    def test_no_clusters_rejected(self):
        with pytest.raises(TopologyError):
            generate_cluster_topology(5, [], seed=1)

    def test_zero_sites_rejected(self):
        with pytest.raises(TopologyError):
            generate_cluster_topology(0, TWO_CLUSTERS, seed=1)


class TestAllocateSites:
    def test_fewer_sites_than_clusters_raises(self):
        """Regression: n_sites < len(clusters) used to underflow the
        donor-steal loop instead of failing with a clear message."""
        with pytest.raises(TopologyError, match="cannot allocate"):
            _allocate_sites(WAN_CLUSTERS, len(WAN_CLUSTERS) - 1)
        # The boundary is fine: exactly one site per cluster.
        counts = _allocate_sites(WAN_CLUSTERS, len(WAN_CLUSTERS))
        assert counts == [1] * len(WAN_CLUSTERS)

    def test_remainder_ties_break_toward_lower_index(self):
        """Equal weights, sites not divisible by clusters: the stable
        sort must hand the extra sites to the lowest-index clusters."""
        clusters = [
            ClusterSpec(f"c{i}", 0.0, float(i), 1.0, 1.0) for i in range(4)
        ]
        # 6 sites over 4 equal clusters: raw 1.5 each, remainders all
        # equal — clusters 0 and 1 get the two extras, deterministically.
        assert _allocate_sites(clusters, 6) == [2, 2, 1, 1]
        assert _allocate_sites(clusters, 7) == [2, 2, 2, 1]

    def test_counts_sum_and_cover(self):
        counts = _allocate_sites(WAN_CLUSTERS, 137)
        assert sum(counts) == 137
        assert min(counts) >= 1


class TestSyntheticWan:
    def test_deterministic_per_size(self):
        a = synthetic_wan(250)
        b = synthetic_wan(250)
        assert np.array_equal(a.rtt, b.rtt)
        assert a.names == b.names

    def test_skips_metric_closure(self):
        """The presets must not pay the O(n^3) closure; the raw cluster
        model is near-metric but not exactly closed."""
        wan = synthetic_wan(250)
        assert wan.n_nodes == 250
        # Symmetric with a zero diagonal even without closure.
        assert np.array_equal(wan.rtt, wan.rtt.T)
        assert np.all(np.diag(wan.rtt) == 0.0)

    def test_spans_all_wan_metros(self):
        wan = synthetic_wan(300)
        prefixes = {name.rsplit("-", 1)[0] for name in wan.names}
        assert prefixes == {c.name for c in WAN_CLUSTERS}
