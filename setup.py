"""Setuptools entry point.

Kept alongside pyproject.toml so that editable installs work on
environments whose setuptools predates PEP 660 wheel-based editables
(legacy ``setup.py develop`` path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Minimizing Response Time for Quorum-System "
        "Protocols over Wide-Area Networks' (Oprea & Reiter, DSN 2007)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
